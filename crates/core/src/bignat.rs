//! Arbitrary-precision natural numbers for the termination measure.
//!
//! The paper's `stackScore` (§4.3) computes `bᵉ · u` terms where the base
//! is `1 + maxRhsLen(G)` and the exponent can be as large as the number of
//! grammar nonterminals — hundreds for the Python grammar — so the score
//! does not fit any machine integer. Coq's `nat` is arbitrary precision;
//! this module is its Rust counterpart, with exactly the operations the
//! measure needs: addition, multiplication by a small factor, powers, and
//! comparison. It lives on the *instrumentation* path only, never on the
//! parser's hot path.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision natural number (little-endian base-2⁶⁴ limbs,
/// normalized: no trailing zero limbs).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct BigNat {
    limbs: Vec<u64>,
}

impl BigNat {
    /// Zero.
    pub fn zero() -> Self {
        BigNat { limbs: Vec::new() }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// In-place addition.
    pub fn add_assign(&mut self, other: &BigNat) {
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let (s1, c1) = limb.overflowing_add(other.limbs.get(i).copied().unwrap_or(0));
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// In-place multiplication by a `u64` factor.
    pub fn mul_u64_assign(&mut self, factor: u64) {
        if factor == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = u128::from(*limb) * u128::from(factor) + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        while carry != 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
        self.normalize();
    }

    /// `base ^ exp`, by repeated limb multiplication. `0^0 = 1`, matching
    /// Coq's `Nat.pow`.
    pub fn pow(base: u64, exp: usize) -> Self {
        let mut out = BigNat::from(1u64);
        for _ in 0..exp {
            out.mul_u64_assign(base);
        }
        out
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        let mut n = BigNat { limbs: vec![v] };
        n.normalize();
        n
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl fmt::Display for BigNat {
    /// Decimal rendering (used only in diagnostics; O(n²) is fine).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut limbs = self.limbs.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !limbs.is_empty() {
            let mut rem = 0u128;
            for limb in limbs.iter_mut().rev() {
                let cur = (rem << 64) | u128::from(*limb);
                *limb = (cur / u128::from(CHUNK)) as u64;
                rem = cur % u128::from(CHUNK);
            }
            while limbs.last() == Some(&0) {
                limbs.pop();
            }
            chunks.push(rem as u64);
        }
        let mut iter = chunks.iter().rev();
        if let Some(first) = iter.next() {
            write!(f, "{first}")?;
        }
        for chunk in iter {
            write!(f, "{chunk:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_properties() {
        let z = BigNat::zero();
        assert!(z.is_zero());
        assert_eq!(z, BigNat::from(0u64));
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    fn addition_with_carry() {
        let mut a = BigNat::from(u64::MAX);
        a.add_assign(&BigNat::from(1u64));
        assert_eq!(a.to_string(), "18446744073709551616");
        let mut b = a.clone();
        b.add_assign(&a);
        assert_eq!(b.to_string(), "36893488147419103232");
    }

    #[test]
    fn multiplication_by_small() {
        let mut a = BigNat::from(12_345u64);
        a.mul_u64_assign(1_000_000);
        assert_eq!(a.to_string(), "12345000000");
        a.mul_u64_assign(0);
        assert!(a.is_zero());
    }

    #[test]
    fn pow_matches_u128_for_small_cases() {
        for base in [0u64, 1, 2, 3, 10] {
            for exp in 0..20usize {
                let expected = (base as u128).pow(exp as u32);
                assert_eq!(
                    BigNat::pow(base, exp).to_string(),
                    expected.to_string(),
                    "{base}^{exp}"
                );
            }
        }
    }

    #[test]
    fn pow_handles_huge_exponents() {
        // 11^300 has ~313 decimal digits; just sanity-check ordering.
        let big = BigNat::pow(11, 300);
        let bigger = BigNat::pow(11, 301);
        assert!(big < bigger);
        assert!(BigNat::pow(11, 300) == big);
    }

    #[test]
    fn ordering_is_numeric() {
        let a = BigNat::pow(2, 64); // one limb longer than any u64
        let b = BigNat::from(u64::MAX);
        assert!(b < a);
        assert!(BigNat::from(5u64) < BigNat::from(6u64));
        assert_eq!(BigNat::from(7u64).cmp(&BigNat::from(7u64)), Ordering::Equal);
    }

    #[test]
    fn display_pads_interior_chunks() {
        // 2^64 = 18446744073709551616 spans two 10^19 chunks; ensure no
        // digits are dropped by the chunked renderer.
        let mut v = BigNat::pow(10, 19);
        v.add_assign(&BigNat::from(7u64));
        assert_eq!(v.to_string(), "10000000000000000007");
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Addition and small multiplication agree with u128 arithmetic
        /// wherever u128 can represent the result.
        #[test]
        fn agrees_with_u128(a in any::<u64>(), b in any::<u64>(), f in 0u64..1_000_000) {
            let mut sum = BigNat::from(a);
            sum.add_assign(&BigNat::from(b));
            prop_assert_eq!(sum.to_string(), (a as u128 + b as u128).to_string());

            let mut prod = BigNat::from(a);
            prod.mul_u64_assign(f);
            prop_assert_eq!(prod.to_string(), (a as u128 * f as u128).to_string());
        }

        /// Ordering is total and agrees with u128 where comparable.
        #[test]
        fn ordering_agrees_with_u128(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(BigNat::from(a).cmp(&BigNat::from(b)), a.cmp(&b));
        }

        /// pow is multiplicative: base^(e1+e2) = base^e1 * base^e2,
        /// checked via string decimal rendering against u128 where small.
        #[test]
        fn pow_splits(base in 2u64..12, e1 in 0usize..12, e2 in 0usize..12) {
            let combined = BigNat::pow(base, e1 + e2);
            let expected = (base as u128).pow(e1 as u32) * (base as u128).pow(e2 as u32);
            prop_assert_eq!(combined.to_string(), expected.to_string());
        }
    }
}
