//! Nondeterministic-value constructors for bounded model checking.
//!
//! Compiled only under `cfg(kani)` (i.e. by `cargo kani`, never by plain
//! `cargo`): these helpers let the `costar-verify` proof harnesses draw
//! *core-internal* values — [`BigNat`]s, [`Measure`] triples, suffix
//! frames — directly from the model checker's nondeterministic value
//! space, instead of reconstructing them through the public builder APIs.
//! Every constructor takes explicit bounds and encodes them with
//! `kani::assume`, keeping the symbolic state space small enough for
//! bounded verification to finish.
//!
//! The dual (pseudo-random) constructors for the default build live in
//! `costar-verify`'s `Nondet` abstraction; this module is the Kani side
//! of that pairing.

use crate::bignat::BigNat;
use crate::measure::Measure;
use crate::state::SuffixFrame;
use costar_grammar::Symbol;
use std::sync::Arc;

/// An arbitrary [`BigNat`] with at most two 64-bit limbs — enough to
/// exercise carry propagation without exploding the state space.
pub fn any_bignat() -> BigNat {
    let mut n = BigNat::from(kani::any::<u64>());
    if kani::any::<bool>() {
        // Shift into the second limb by multiplying through 2^32 twice.
        n.mul_u64_assign(1 << 32);
        n.mul_u64_assign(1 << 32);
        n.add_assign(&BigNat::from(kani::any::<u64>()));
    }
    n
}

/// An arbitrary measure triple with each component bounded.
pub fn any_measure(max_tokens: usize, max_height: usize) -> Measure {
    let tokens_remaining: usize = kani::any();
    kani::assume(tokens_remaining <= max_tokens);
    let stack_height: usize = kani::any();
    kani::assume(stack_height <= max_height);
    Measure {
        tokens_remaining,
        stack_score: any_bignat(),
        stack_height,
    }
}

/// An arbitrary suffix frame over the given right-hand side: the dot is
/// nondeterministic but in range, the caller flag nondeterministic.
pub fn any_frame(rhs: Arc<[Symbol]>) -> SuffixFrame {
    let dot: usize = kani::any();
    kani::assume(dot <= rhs.len());
    SuffixFrame {
        caller: None,
        rhs,
        dot,
    }
}
