//! The well-founded termination measure (paper §4.2–4.3).
//!
//! `meas(σ)` maps a machine state to a triple of naturals —
//! `(remaining tokens, stackScore, suffix stack height)` — ordered
//! lexicographically (`<₃`). Lemma 4.2 proves every machine step strictly
//! decreases this measure; in Coq that fact drives the `Acc`-based
//! definition of `multistep`, while here it is an *instrumentation
//! artifact*: [`crate::instrument::run_instrumented`] recomputes the measure
//! after every step and asserts the strict decrease, and the property
//! tests in this crate fuzz the same claim.

use crate::bignat::BigNat;
use crate::state::{MachineState, SuffixFrame};
use costar_grammar::{Grammar, NtSet};
use std::cmp::Ordering;
use std::fmt;

/// The measure triple, compared lexicographically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measure {
    /// Number of unconsumed tokens.
    pub tokens_remaining: usize,
    /// The `stackScore` of the suffix stack and visited set (§4.3).
    pub stack_score: BigNat,
    /// Height of the suffix stack.
    pub stack_height: usize,
}

impl PartialOrd for Measure {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Measure {
    fn cmp(&self, other: &Self) -> Ordering {
        self.tokens_remaining
            .cmp(&other.tokens_remaining)
            .then_with(|| self.stack_score.cmp(&other.stack_score))
            .then_with(|| self.stack_height.cmp(&other.stack_height))
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.tokens_remaining, self.stack_score, self.stack_height
        )
    }
}

/// `frameScore(ψ, b, e) = bᵉ · (# unprocessed symbols in ψ)` (§4.3).
///
/// Public so the `costar-verify` harnesses (`H-MEASURE-ORD`) can exercise
/// the frame-level algebra of Lemmas 4.3/4.4 over nondeterministic frames
/// directly, not only through full machine states.
pub fn frame_score(frame: &SuffixFrame, base: u64, exp: usize) -> BigNat {
    let mut score = BigNat::pow(base, exp);
    score.mul_u64_assign(frame.unprocessed().len() as u64);
    score
}

/// `stackScore′`: sums frame scores top-to-bottom, incrementing the
/// exponent for each lower frame (§4.3). `frames` is bottom-first (the
/// machine's storage order), so the iteration walks it in reverse.
///
/// Public for the `costar-verify` harnesses (see [`frame_score`]).
pub fn stack_score_prime(frames: &[SuffixFrame], base: u64, initial_exp: usize) -> BigNat {
    let mut total = BigNat::zero();
    for (depth_from_top, frame) in frames.iter().rev().enumerate() {
        total.add_assign(&frame_score(frame, base, initial_exp + depth_from_top));
    }
    total
}

/// `stackScore(G, Ψ, V) = stackScore′(Ψ, 1 + maxRhsLen(G), |U \ V|)`
/// where `U` is the universe of grammar left-hand sides and `V` the
/// visited set (§4.3).
pub fn stack_score(g: &Grammar, frames: &[SuffixFrame], visited: &NtSet) -> BigNat {
    let base = 1 + g.max_rhs_len() as u64;
    // |U \ V|: visited is maintained as a subset of the nonterminals that
    // appear on the stack, all of which have productions, so the
    // difference is a plain subtraction.
    let universe = universe_size(g);
    let exp = universe.saturating_sub(visited.len());
    stack_score_prime(frames, base, exp)
}

/// `|U|`: the number of distinct grammar left-hand sides.
fn universe_size(g: &Grammar) -> usize {
    g.symbols()
        .nonterminals()
        .filter(|&x| !g.alternatives(x).is_empty())
        .count()
}

/// `meas(σ)`: the full measure triple for a machine state (§4.2).
pub fn meas(g: &Grammar, state: &MachineState, total_tokens: usize) -> Measure {
    Measure {
        tokens_remaining: total_tokens - state.cursor,
        stack_score: stack_score(g, &state.suffix, &state.visited),
        stack_height: state.stack_height(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::{GrammarBuilder, Symbol};
    use std::sync::Arc;

    fn fig2_grammar() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    fn frame(rhs: Vec<Symbol>, dot: usize) -> SuffixFrame {
        SuffixFrame {
            caller: None,
            rhs: Arc::from(rhs.into_boxed_slice()),
            dot,
        }
    }

    #[test]
    fn lexicographic_order() {
        let a = Measure {
            tokens_remaining: 1,
            stack_score: BigNat::from(100u64),
            stack_height: 1,
        };
        let b = Measure {
            tokens_remaining: 2,
            stack_score: BigNat::zero(),
            stack_height: 0,
        };
        assert!(a < b, "first component dominates");
        let c = Measure {
            tokens_remaining: 1,
            stack_score: BigNat::from(99u64),
            stack_height: 50,
        };
        assert!(c < a, "second component breaks first-component ties");
        let d = Measure {
            tokens_remaining: 1,
            stack_score: BigNat::from(99u64),
            stack_height: 49,
        };
        assert!(d < c, "third component breaks remaining ties");
    }

    #[test]
    fn frame_score_counts_unprocessed_only() {
        let g = fig2_grammar();
        let a = g.symbols().lookup_terminal("a").unwrap();
        let f = frame(vec![a.into(), a.into(), a.into()], 1);
        // base 3 (maxRhsLen 2), exponent 2: 9 * 2 unprocessed = 18.
        assert_eq!(frame_score(&f, 3, 2).to_string(), "18");
    }

    #[test]
    fn lower_frames_weigh_more() {
        let g = fig2_grammar();
        let a = g.symbols().lookup_terminal("a").unwrap();
        let one = frame(vec![a.into()], 0);
        // Two identical frames: top gets b^e, bottom b^(e+1).
        let score = stack_score_prime(&[one.clone(), one], 3, 1);
        assert_eq!(score.to_string(), "12"); // 3^2 (bottom) + 3^1 (top)
    }

    #[test]
    fn push_strictly_decreases_score() {
        // Mirrors Lemma 4.3 on a concrete configuration: machine at
        // bottom frame [S] with dot 0, pushes S -> A d.
        let g = fig2_grammar();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let mut visited = NtSet::with_capacity(2);
        let before_frames = vec![frame(vec![Symbol::Nt(s)], 0)];
        let before = stack_score(&g, &before_frames, &visited);

        let pid = g.alternatives(s)[1]; // S -> A d
        let after_frames = vec![
            frame(vec![Symbol::Nt(s)], 1), // caller dot advanced past S
            SuffixFrame {
                caller: Some(s),
                rhs: g.rhs_arc(pid),
                dot: 0,
            },
        ];
        visited.insert(s);
        let after = stack_score(&g, &after_frames, &visited);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn return_keeps_score_constant_when_nt_visited() {
        // Mirrors Lemma 4.4: popping an exhausted frame while removing its
        // caller from the visited set leaves the score unchanged.
        let g = fig2_grammar();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let a_nt = g.symbols().lookup_nonterminal("A").unwrap();
        let mut visited = NtSet::with_capacity(2);
        visited.insert(s);
        visited.insert(a_nt);
        let exhausted = SuffixFrame {
            caller: Some(a_nt),
            rhs: g.rhs_arc(g.alternatives(a_nt)[1]), // A -> b
            dot: 1,
        };
        // Caller keeps one unprocessed symbol so the comparison is not 0 = 0.
        let caller = frame(vec![Symbol::Nt(s), Symbol::Nt(s)], 1);
        let before = stack_score(&g, &[caller.clone(), exhausted], &visited);
        visited.remove(a_nt);
        let after = stack_score(&g, &[caller], &visited);
        assert!(!before.is_zero());
        assert_eq!(before, after);
    }

    #[test]
    fn meas_uses_cursor_for_tokens() {
        let g = fig2_grammar();
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let mut st = MachineState::initial(s, g.num_nonterminals());
        st.cursor = 2;
        let m = meas(&g, &st, 5);
        assert_eq!(m.tokens_remaining, 3);
        assert_eq!(m.stack_height, 1);
    }

    #[test]
    fn universe_counts_only_defined_nonterminals() {
        let g = fig2_grammar();
        assert_eq!(universe_size(&g), 2);
    }
}
