//! Parser error and rejection values (paper Fig. 1).
//!
//! CoStar distinguishes *rejections* (the input word is not in the
//! grammar's language) from *errors* (the machine reached an inconsistent
//! state). Theorem 5.8 proves errors never occur for non-left-recursive
//! grammars; the reproduction's property tests check the same claim.

use costar_grammar::{NonTerminal, Span, Terminal};
use std::borrow::Cow;
use std::fmt;

/// An internal parser error (`e ::= InvalidState | LeftRecursive(X)`).
///
/// For non-left-recursive grammars these never escape [`crate::parse`]
/// (paper Theorem 5.8); encountering one with such a grammar is a bug in
/// the parser, not in the caller's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The machine state became inconsistent (e.g. mismatched stack
    /// heights, or a return with no caller nonterminal). Also the mapped
    /// form of any panic caught at the [`crate::Parser::parse`] boundary.
    InvalidState {
        /// Human-readable description of the inconsistency. Borrowed for
        /// the static diagnostics the machine produces itself; owned for
        /// messages recovered from caught panics.
        reason: Cow<'static, str>,
    },
    /// Dynamic left-recursion detection fired: the nonterminal is
    /// left-recursive in the grammar (paper §4.1, Lemma 5.10 proves this
    /// diagnosis sound).
    LeftRecursive(NonTerminal),
}

impl ParseError {
    /// Builds an [`ParseError::InvalidState`] from either a static or an
    /// owned message.
    pub fn invalid_state(reason: impl Into<Cow<'static, str>>) -> Self {
        ParseError::InvalidState {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::InvalidState { reason } => {
                write!(f, "parser reached an inconsistent state: {reason}")
            }
            ParseError::LeftRecursive(x) => {
                write!(f, "grammar nonterminal {x} is left-recursive")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Why an input word was rejected (`w ∉ L(G)`), with position information
/// for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The next token's terminal did not match the terminal at the top of
    /// the suffix stack (a failed consume operation, paper §3.3).
    TokenMismatch {
        /// Index of the offending token in the input word.
        at: usize,
        /// Source span of the offending token (`Span::default()` when the
        /// token carries no position information).
        span: Span,
        /// The terminal the parser needed.
        expected: Terminal,
        /// The terminal it found.
        found: Terminal,
    },
    /// Input ended while the parser still needed a terminal.
    UnexpectedEnd {
        /// Index just past the last token (the length of the input word).
        at: usize,
        /// Source span of the last token of the input, locating "where the
        /// input stopped" (`Span::default()` for empty input).
        span: Span,
        /// The terminal the parser needed at end of input.
        expected: Terminal,
    },
    /// The parse completed but tokens remain.
    TrailingInput {
        /// Index of the first unconsumed token.
        at: usize,
        /// Source span of the first unconsumed token.
        span: Span,
    },
    /// Prediction found no viable right-hand side for a decision
    /// nonterminal (`RejectP`, paper §3.4).
    NoViableAlternative {
        /// Index of the token at which prediction began.
        at: usize,
        /// Source span of the token at which prediction began
        /// (`Span::default()` when prediction began at end of input).
        span: Span,
        /// The decision nonterminal.
        nonterminal: NonTerminal,
    },
}

impl RejectReason {
    /// The input position (token index) associated with the rejection, if
    /// meaningful.
    pub fn position(&self) -> Option<usize> {
        match self {
            RejectReason::TokenMismatch { at, .. }
            | RejectReason::TrailingInput { at, .. }
            | RejectReason::NoViableAlternative { at, .. } => Some(*at),
            RejectReason::UnexpectedEnd { .. } => None,
        }
    }

    /// The source span associated with the rejection. May be
    /// `Span::default()` (no position) when the input tokens carry no
    /// position information.
    pub fn span(&self) -> Span {
        match self {
            RejectReason::TokenMismatch { span, .. }
            | RejectReason::UnexpectedEnd { span, .. }
            | RejectReason::TrailingInput { span, .. }
            | RejectReason::NoViableAlternative { span, .. } => *span,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Spans render as "line L, column C" when the lexer provided
        // positions, and are omitted entirely for position-free tokens.
        let loc = |span: &Span| -> String {
            if span.has_position() {
                format!(" ({span})")
            } else {
                String::new()
            }
        };
        match self {
            RejectReason::TokenMismatch {
                at,
                span,
                expected,
                found,
            } => write!(
                f,
                "token {at}{}: expected {expected}, found {found}",
                loc(span)
            ),
            RejectReason::UnexpectedEnd { span, expected, .. } => {
                write!(
                    f,
                    "unexpected end of input{}: expected {expected}",
                    loc(span)
                )
            }
            RejectReason::TrailingInput { at, span } => {
                write!(f, "trailing input starting at token {at}{}", loc(span))
            }
            RejectReason::NoViableAlternative {
                at,
                span,
                nonterminal,
            } => {
                write!(
                    f,
                    "token {at}{}: no viable alternative for {nonterminal}",
                    loc(span)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ParseError::LeftRecursive(NonTerminal::from_index(3));
        assert!(e.to_string().contains("left-recursive"));
        let e = ParseError::invalid_state("stack height mismatch");
        assert!(e.to_string().contains("stack height mismatch"));
    }

    #[test]
    fn reject_positions() {
        let r = RejectReason::TokenMismatch {
            at: 7,
            span: Span::default(),
            expected: Terminal::from_index(0),
            found: Terminal::from_index(1),
        };
        assert_eq!(r.position(), Some(7));
        let r = RejectReason::UnexpectedEnd {
            at: 3,
            span: Span::default(),
            expected: Terminal::from_index(0),
        };
        assert_eq!(r.position(), None);
        let r = RejectReason::TrailingInput {
            at: 2,
            span: Span::default(),
        };
        assert_eq!(r.position(), Some(2));
        let r = RejectReason::NoViableAlternative {
            at: 0,
            span: Span::default(),
            nonterminal: NonTerminal::from_index(0),
        };
        assert_eq!(r.position(), Some(0));
    }

    #[test]
    fn reject_spans_render_when_positioned() {
        let with_pos = RejectReason::TokenMismatch {
            at: 1,
            span: Span::new(4, 2, 3, 5),
            expected: Terminal::from_index(0),
            found: Terminal::from_index(1),
        };
        assert_eq!(with_pos.span().line, 3);
        let msg = with_pos.to_string();
        assert!(msg.contains("line 3, column 5"), "{msg}");
        let without = RejectReason::TrailingInput {
            at: 2,
            span: Span::default(),
        };
        assert!(!without.to_string().contains("line"), "no fake positions");
    }
}
