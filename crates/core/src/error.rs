//! Parser error and rejection values (paper Fig. 1).
//!
//! CoStar distinguishes *rejections* (the input word is not in the
//! grammar's language) from *errors* (the machine reached an inconsistent
//! state). Theorem 5.8 proves errors never occur for non-left-recursive
//! grammars; the reproduction's property tests check the same claim.

use costar_grammar::{NonTerminal, Terminal};
use std::borrow::Cow;
use std::fmt;

/// An internal parser error (`e ::= InvalidState | LeftRecursive(X)`).
///
/// For non-left-recursive grammars these never escape [`crate::parse`]
/// (paper Theorem 5.8); encountering one with such a grammar is a bug in
/// the parser, not in the caller's input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The machine state became inconsistent (e.g. mismatched stack
    /// heights, or a return with no caller nonterminal). Also the mapped
    /// form of any panic caught at the [`crate::Parser::parse`] boundary.
    InvalidState {
        /// Human-readable description of the inconsistency. Borrowed for
        /// the static diagnostics the machine produces itself; owned for
        /// messages recovered from caught panics.
        reason: Cow<'static, str>,
    },
    /// Dynamic left-recursion detection fired: the nonterminal is
    /// left-recursive in the grammar (paper §4.1, Lemma 5.10 proves this
    /// diagnosis sound).
    LeftRecursive(NonTerminal),
}

impl ParseError {
    /// Builds an [`ParseError::InvalidState`] from either a static or an
    /// owned message.
    pub fn invalid_state(reason: impl Into<Cow<'static, str>>) -> Self {
        ParseError::InvalidState {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::InvalidState { reason } => {
                write!(f, "parser reached an inconsistent state: {reason}")
            }
            ParseError::LeftRecursive(x) => {
                write!(f, "grammar nonterminal {x} is left-recursive")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Why an input word was rejected (`w ∉ L(G)`), with position information
/// for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The next token's terminal did not match the terminal at the top of
    /// the suffix stack (a failed consume operation, paper §3.3).
    TokenMismatch {
        /// Index of the offending token in the input word.
        at: usize,
        /// The terminal the parser needed.
        expected: Terminal,
        /// The terminal it found.
        found: Terminal,
    },
    /// Input ended while the parser still needed a terminal.
    UnexpectedEnd {
        /// The terminal the parser needed at end of input.
        expected: Terminal,
    },
    /// The parse completed but tokens remain.
    TrailingInput {
        /// Index of the first unconsumed token.
        at: usize,
    },
    /// Prediction found no viable right-hand side for a decision
    /// nonterminal (`RejectP`, paper §3.4).
    NoViableAlternative {
        /// Index of the token at which prediction began.
        at: usize,
        /// The decision nonterminal.
        nonterminal: NonTerminal,
    },
}

impl RejectReason {
    /// The input position (token index) associated with the rejection, if
    /// meaningful.
    pub fn position(&self) -> Option<usize> {
        match self {
            RejectReason::TokenMismatch { at, .. }
            | RejectReason::TrailingInput { at }
            | RejectReason::NoViableAlternative { at, .. } => Some(*at),
            RejectReason::UnexpectedEnd { .. } => None,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::TokenMismatch {
                at,
                expected,
                found,
            } => write!(f, "token {at}: expected {expected}, found {found}"),
            RejectReason::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input: expected {expected}")
            }
            RejectReason::TrailingInput { at } => {
                write!(f, "trailing input starting at token {at}")
            }
            RejectReason::NoViableAlternative { at, nonterminal } => {
                write!(f, "token {at}: no viable alternative for {nonterminal}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ParseError::LeftRecursive(NonTerminal::from_index(3));
        assert!(e.to_string().contains("left-recursive"));
        let e = ParseError::invalid_state("stack height mismatch");
        assert!(e.to_string().contains("stack height mismatch"));
    }

    #[test]
    fn reject_positions() {
        let r = RejectReason::TokenMismatch {
            at: 7,
            expected: Terminal::from_index(0),
            found: Terminal::from_index(1),
        };
        assert_eq!(r.position(), Some(7));
        let r = RejectReason::UnexpectedEnd {
            expected: Terminal::from_index(0),
        };
        assert_eq!(r.position(), None);
        let r = RejectReason::TrailingInput { at: 2 };
        assert_eq!(r.position(), Some(2));
        let r = RejectReason::NoViableAlternative {
            at: 0,
            nonterminal: NonTerminal::from_index(0),
        };
        assert_eq!(r.position(), Some(0));
    }
}
