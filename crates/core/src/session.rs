//! Edit sessions: incremental lexing threaded through the parser.
//!
//! A [`ParseSession`] pairs a [`costar_lexer::EditSession`] (source text,
//! token vector, and the per-token DFA restart states that make splicing
//! possible) with the parser's most recent outcome for that token vector.
//! [`Parser::reparse_after_edit`] applies an [`Edit`], re-lexes only the
//! damaged region, and then exploits the one fact the incremental lexer
//! certifies (`H-INCR-LEX-SOUND`): the spliced token vector is
//! byte-identical — kind, lexeme, span — to a from-scratch lex of the
//! edited source. When the splice additionally reports
//! [`SpliceReport::unchanged`] (the token vector is byte-identical to the
//! *pre-edit* vector, e.g. an edit confined to skipped trivia of equal
//! width), the cached outcome is returned without running the parser at
//! all: a parse is a pure function of its token word (for a fixed
//! grammar, budget, and prediction mode), so identical words yield
//! identical outcomes. Otherwise the spliced word is re-parsed under the
//! parser's usual budget/observer machinery and the cache is refreshed.
//!
//! Sessions come in the two flavors the parser itself has: plain
//! ([`Parser::parse_session`], caching a [`ParseOutcome`]) and recovering
//! ([`Parser::parse_session_recovering`], caching a [`RecoveredParse`]
//! with its diagnostics). A session created one way stays that way — each
//! reparse refreshes the same kind of cached result.

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
use crate::machine::ParseOutcome;
use crate::observe::{MetricsObserver, NullObserver, ParseMetrics, ParseObserver};
use crate::parser::Parser;
use crate::recover::RecoveredParse;
use costar_grammar::Token;
use costar_lexer::{Edit, EditError, EditSession, LexError, Lexer, SpliceReport};
use std::time::Instant;

/// The parser result a session keeps alongside its token vector. Plain
/// and recovering parses return different types, so the cache is a sum —
/// a session refreshes whichever variant it was created with.
#[derive(Debug)]
enum CachedParse {
    Plain(ParseOutcome),
    Recovering(RecoveredParse),
}

/// A live edit session: the current source text, its token vector with
/// incremental-relex metadata, and the cached result of parsing that
/// token vector. Create one with [`Parser::parse_session`] or
/// [`Parser::parse_session_recovering`]; advance it with
/// [`Parser::reparse_after_edit`].
#[derive(Debug)]
pub struct ParseSession {
    lex: EditSession,
    cached: CachedParse,
}

impl ParseSession {
    /// The current source text (all applied edits folded in).
    pub fn source(&self) -> &str {
        self.lex.source()
    }

    /// The current token vector — always byte-identical to what
    /// [`Lexer::tokenize`] would produce from [`ParseSession::source`].
    pub fn tokens(&self) -> &[Token] {
        self.lex.tokens()
    }

    /// The cached parse outcome for the current token vector. For a
    /// recovering session this is the embedded
    /// [`RecoveredParse::outcome`].
    pub fn outcome(&self) -> &ParseOutcome {
        match &self.cached {
            CachedParse::Plain(outcome) => outcome,
            CachedParse::Recovering(recovered) => &recovered.outcome,
        }
    }

    /// The cached recovering result — diagnostics and all — when this
    /// session was created with [`Parser::parse_session_recovering`];
    /// `None` for plain sessions.
    pub fn recovered(&self) -> Option<&RecoveredParse> {
        match &self.cached {
            CachedParse::Plain(_) => None,
            CachedParse::Recovering(recovered) => Some(recovered),
        }
    }
}

/// What one [`Parser::reparse_after_edit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReparse {
    /// `true` when the spliced token vector was byte-identical to the
    /// pre-edit vector and the cached outcome was returned without
    /// running the parser.
    pub reused: bool,
    /// The incremental lexer's own account of the splice: damage window,
    /// tokens re-lexed vs. carried over, and re-lex latency.
    pub splice: SpliceReport,
}

impl Parser {
    /// Lexes `source` with `lexer` (which must have been compiled against
    /// this grammar's symbol table) into an edit session, parses the
    /// resulting word, and returns the session with the outcome cached.
    ///
    /// Fails only if `source` does not lex; parse-level failures are
    /// values of the cached [`ParseOutcome`], not errors.
    pub fn parse_session(&mut self, lexer: &Lexer, source: &str) -> Result<ParseSession, LexError> {
        let lex = EditSession::new(lexer, source)?;
        let outcome = self.parse(lex.tokens());
        Ok(ParseSession {
            lex,
            cached: CachedParse::Plain(outcome),
        })
    }

    /// [`Parser::parse_session`] with syntax-error recovery: the cached
    /// result is a full [`RecoveredParse`], and every reparse runs
    /// [`Parser::parse_recovering`] instead of [`Parser::parse`].
    pub fn parse_session_recovering(
        &mut self,
        lexer: &Lexer,
        source: &str,
    ) -> Result<ParseSession, LexError> {
        let lex = EditSession::new(lexer, source)?;
        let recovered = self.parse_recovering(lex.tokens());
        Ok(ParseSession {
            lex,
            cached: CachedParse::Recovering(recovered),
        })
    }

    /// Applies `edit` to the session's source, incrementally re-lexing
    /// only the damaged region, and refreshes the cached parse: when the
    /// spliced token vector is byte-identical to the pre-edit vector the
    /// cached outcome is reused outright (`reused == true`, no parse
    /// work); otherwise the new word is re-parsed and the cache replaced.
    ///
    /// On error — an out-of-range or char-splitting edit, or an edit
    /// whose result does not lex — the session is left exactly as it was:
    /// source, tokens, and cached outcome all still describe the
    /// pre-edit state, and further edits may be applied.
    pub fn reparse_after_edit(
        &mut self,
        session: &mut ParseSession,
        edit: &Edit,
    ) -> Result<SessionReparse, EditError> {
        self.reparse_after_edit_observed(session, edit, &mut NullObserver)
    }

    /// [`Parser::reparse_after_edit`] with a [`ParseObserver`]: fires
    /// [`ParseObserver::on_incremental_relex`] once for the splice, then
    /// (unless the cached outcome is reused) the usual parse events.
    pub fn reparse_after_edit_observed<O: ParseObserver>(
        &mut self,
        session: &mut ParseSession,
        edit: &Edit,
        obs: &mut O,
    ) -> Result<SessionReparse, EditError> {
        let splice = session.lex.apply(edit)?;
        obs.on_incremental_relex(
            splice.tokens_relexed as u64,
            splice.tokens_reused as u64,
            splice.relex_micros,
        );
        let reused = splice.unchanged;
        if !reused {
            match &mut session.cached {
                CachedParse::Plain(outcome) => {
                    *outcome = self.parse_observed(session.lex.tokens(), obs);
                }
                CachedParse::Recovering(recovered) => {
                    *recovered = self.parse_recovering_observed(session.lex.tokens(), obs);
                }
            }
        }
        Ok(SessionReparse { reused, splice })
    }

    /// [`Parser::reparse_after_edit`] with a [`MetricsObserver`]
    /// attached: returns the reparse summary together with the full
    /// [`ParseMetrics`], including the incremental counters
    /// (`tokens_relexed`, `tokens_reused`, `incremental_lex_micros`). A
    /// reused reparse reports zero machine steps — only the re-lex ran.
    pub fn reparse_after_edit_with_metrics(
        &mut self,
        session: &mut ParseSession,
        edit: &Edit,
    ) -> Result<(SessionReparse, ParseMetrics), EditError> {
        let mut obs = MetricsObserver::new();
        let start = Instant::now();
        let reparse = self.reparse_after_edit_observed(session, edit, &mut obs)?;
        let mut metrics = obs.into_metrics();
        metrics.total_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        metrics.tokens = session.tokens().len();
        Ok((reparse, metrics))
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use costar_grammar::GrammarBuilder;
    use costar_lexer::LexerSpec;

    /// `S -> Ident = E ; E -> Int | Ident`, lexer compiled against the
    /// grammar's own symbol table so terminal identities line up.
    fn setup() -> (Parser, Lexer) {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["Ident", "Eq", "E"]);
        gb.rule("E", &["Int"]);
        gb.rule("E", &["Ident"]);
        let grammar = gb.start("S").build().unwrap();
        let mut tab = grammar.symbols().clone();
        let mut spec = LexerSpec::new();
        spec.token_literal("Eq", "=");
        spec.token("Ident", "[a-z]+");
        spec.token("Int", "[0-9]+");
        spec.skip("ws", "[ \\t\\r\\n]+");
        let lexer = Lexer::compile(&spec, &mut tab).unwrap();
        (Parser::new(grammar), lexer)
    }

    #[test]
    fn parse_session_caches_the_initial_outcome() {
        let (mut p, lexer) = setup();
        let session = p.parse_session(&lexer, "x = 1\n").unwrap();
        assert!(session.outcome().is_accept());
        assert_eq!(session.tokens().len(), 3);
        assert_eq!(session.source(), "x = 1\n");
        assert!(session.recovered().is_none());
    }

    #[test]
    fn changed_token_reparses_and_refreshes_the_cache() {
        let (mut p, lexer) = setup();
        let mut session = p.parse_session(&lexer, "x = 1\n").unwrap();
        // `1` -> `22`: the word changes, so the parse must rerun.
        let reparse = p
            .reparse_after_edit(&mut session, &Edit::new(4..5, "22"))
            .unwrap();
        assert!(!reparse.reused);
        assert_eq!(session.source(), "x = 22\n");
        assert!(session.outcome().is_accept());
        assert_eq!(session.tokens(), &lexer.tokenize("x = 22\n").unwrap()[..]);
        // `22` -> `yy`: still in the language via `E -> Ident`.
        let reparse = p
            .reparse_after_edit(&mut session, &Edit::new(4..6, "yy"))
            .unwrap();
        assert!(!reparse.reused);
        assert!(session.outcome().is_accept());
        // Break it: `yy` -> `=` rejects, and the cache must say so.
        let reparse = p
            .reparse_after_edit(&mut session, &Edit::new(4..6, "="))
            .unwrap();
        assert!(!reparse.reused);
        assert!(!session.outcome().is_accept());
    }

    #[test]
    fn same_width_trivia_edit_skips_the_parse() {
        let (mut p, lexer) = setup();
        let mut session = p.parse_session(&lexer, "x = 1\n").unwrap();
        // Space -> tab inside skipped trivia: same byte width, so every
        // token (spans included) survives verbatim.
        let (reparse, metrics) = p
            .reparse_after_edit_with_metrics(&mut session, &Edit::new(1..2, "\t"))
            .unwrap();
        assert!(reparse.reused);
        assert!(reparse.splice.unchanged);
        assert_eq!(metrics.machine_steps, 0, "the parse must be skipped");
        assert_eq!(
            metrics.tokens_relexed + metrics.tokens_reused,
            session.tokens().len() as u64
        );
        assert!(session.outcome().is_accept());
        assert_eq!(session.tokens(), &lexer.tokenize("x\t= 1\n").unwrap()[..]);
    }

    #[test]
    fn metrics_carry_the_incremental_counters() {
        let (mut p, lexer) = setup();
        let mut session = p.parse_session(&lexer, "x = 1\n").unwrap();
        let (reparse, metrics) = p
            .reparse_after_edit_with_metrics(&mut session, &Edit::new(4..5, "9"))
            .unwrap();
        assert!(!reparse.reused);
        assert!(metrics.machine_steps > 0);
        assert_eq!(metrics.tokens_relexed, reparse.splice.tokens_relexed as u64);
        assert_eq!(metrics.tokens_reused, reparse.splice.tokens_reused as u64);
        assert_eq!(metrics.tokens, session.tokens().len());
        assert!(metrics.reconciles());
        assert!(metrics.splice_reuse_fraction() > 0.0);
    }

    #[test]
    fn recovering_session_refreshes_diagnostics() {
        let (mut p, lexer) = setup();
        // `x = =` rejects at the second `=`.
        let mut session = p.parse_session_recovering(&lexer, "x = =\n").unwrap();
        let recovered = session.recovered().expect("recovering session");
        assert!(!recovered.diagnostics.is_empty());
        assert!(!session.outcome().is_accept());
        // Fix the error; the refreshed cache must be clean.
        let reparse = p
            .reparse_after_edit(&mut session, &Edit::new(4..5, "y"))
            .unwrap();
        assert!(!reparse.reused);
        let recovered = session.recovered().expect("still a recovering session");
        assert!(recovered.diagnostics.is_empty());
        assert!(session.outcome().is_accept());
    }

    #[test]
    fn failed_edits_leave_the_session_intact() {
        let (mut p, lexer) = setup();
        let mut session = p.parse_session(&lexer, "x = 1\n").unwrap();
        // Past EOF: typed error, nothing moved.
        let err = p
            .reparse_after_edit(&mut session, &Edit::new(10..12, "y"))
            .unwrap_err();
        assert!(matches!(err, EditError::OutOfBounds { .. }));
        assert_eq!(session.source(), "x = 1\n");
        assert!(session.outcome().is_accept());
        // Unlexable result: typed error, session still on the old source.
        let err = p
            .reparse_after_edit(&mut session, &Edit::new(4..5, "%"))
            .unwrap_err();
        assert!(matches!(err, EditError::Lex(_)));
        assert_eq!(session.source(), "x = 1\n");
        assert_eq!(session.tokens(), &lexer.tokenize("x = 1\n").unwrap()[..]);
        assert!(session.outcome().is_accept());
        // And the session still accepts further (valid) edits.
        let reparse = p
            .reparse_after_edit(&mut session, &Edit::new(4..5, "7"))
            .unwrap();
        assert!(!reparse.reused);
        assert!(session.outcome().is_accept());
    }
}
