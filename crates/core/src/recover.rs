//! Syntax-error recovery: a resynchronizing driver over the stack machine.
//!
//! The paper's parser is a *decision procedure*: the first failed consume
//! or failed prediction rejects the input and the machine halts. Tooling
//! built on a parser (formatters, language servers, batch validators)
//! wants the opposite contract — parse as much as possible, report *every*
//! error, and return a tree that covers the whole input. This module adds
//! that contract as a layer on top of [`Machine`], without touching the
//! verified-core step function:
//!
//! * the machine runs exactly as in a plain parse until a step would
//!   produce [`StepResult::Reject`];
//! * the driver then records a structured [`Diagnostic`] and performs
//!   **panic-mode resynchronization**: using the sync sets precomputed by
//!   the grammar analysis ([`costar_grammar::analysis::SyncSets`]:
//!   FIRST ∪ FOLLOW per nonterminal)
//!   as a fast candidate filter, it searches for the nearest input token
//!   that can be consumed after skipping input tokens, popping unfinished
//!   stack frames, and/or advancing past expected-but-missing grammar
//!   symbols;
//! * the abandoned material is recorded in the tree as a
//!   [`Tree::Error`] node carrying the skipped tokens, so the recovered
//!   tree still yields the entire input;
//! * parsing resumes, repeating on later errors, bounded by
//!   [`Budget::with_max_recoveries`](crate::Budget::with_max_recoveries).
//!
//! ## Soundness on valid input
//!
//! On a word the grammar accepts, the machine never produces `Reject`, so
//! the driver never intervenes: [`Parser::parse_recovering`] takes the
//! byte-identical step sequence as [`Parser::parse`] and returns the
//! identical tree with zero diagnostics. The `H-RECOVER-SOUND` harness in
//! `crates/verify` checks exactly this (proptest + bounded kani).
//!
//! ## Termination
//!
//! Between recoveries the machine terminates by the paper's §4 measure.
//! Each recovery either consumes input (skipped tokens) or strictly
//! shrinks the stack/advances a dot; a stall guard forces any second
//! recovery at the same input position to skip at least one token (or
//! close out the parse at end of input). Recoveries are therefore bounded
//! by `2·|input| + 2` even without a configured cap.
//!
//! [`Parser::parse_recovering`]: crate::Parser::parse_recovering
//! [`Parser::parse`]: crate::Parser::parse

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
use crate::budget::AbortReason;
use crate::error::RejectReason;
use crate::machine::{Machine, ParseOutcome, StepResult};
use crate::observe::ParseObserver;
use crate::prediction::cache::SllCache;
use crate::state::SuffixFrame;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{ErrorNode, NonTerminal, Span, Symbol, Terminal, Token, Tree};
use std::fmt;

/// One recovered syntax error: where it happened, what the parser wanted,
/// and what the recovery did about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Token index the error was detected at (input length for
    /// end-of-input errors).
    pub at: usize,
    /// Source span of the error (the offending token's span, or the last
    /// token's for end-of-input errors; `Span::default()` when the input
    /// carries no positions).
    pub span: Span,
    /// The machine's rejection, verbatim.
    pub reason: RejectReason,
    /// Terminals that would have been acceptable at the error point
    /// (singleton for consume failures; the decision nonterminal's FIRST
    /// set for prediction failures; empty when only end of input was
    /// acceptable).
    pub expected: Vec<Terminal>,
    /// Input tokens panic-mode skipped to resynchronize.
    pub skipped: usize,
    /// Unfinished stack frames popped to resynchronize.
    pub popped: usize,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)?;
        if self.skipped > 0 {
            write!(f, " (skipped {} token(s))", self.skipped)?;
        }
        Ok(())
    }
}

/// The result of [`Parser::parse_recovering`](crate::Parser::parse_recovering).
///
/// The tree is stored exactly once: for clean parses it lives inside
/// [`RecoveredParse::outcome`] (`Unique`/`Ambig`, mirroring the plain
/// parse), and for recovered parses — where `outcome` is `Reject` — the
/// error-annotated tree is held separately. [`RecoveredParse::tree`]
/// unifies the two, so clean input never pays for a tree clone.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredParse {
    /// The error-annotated tree, populated only when `outcome` does not
    /// carry the tree itself (i.e. after at least one recovery).
    pub(crate) error_tree: Option<Tree>,
    /// One entry per recovered syntax error, in input order. Empty iff
    /// the input is in the grammar's language (or the parse aborted
    /// before the first error).
    pub diagnostics: Vec<Diagnostic>,
    /// What a plain parse of this word would have reported: `Unique` /
    /// `Ambig` when there were no errors, `Reject` with the *first*
    /// error's reason when there were, `Error` / `Aborted` verbatim.
    pub outcome: ParseOutcome,
}

impl RecoveredParse {
    /// `true` when the input parsed cleanly — no diagnostics, accepted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.outcome.is_accept()
    }

    /// The parse tree. On valid input, identical to the plain parse's
    /// tree. After recoveries, a tree containing [`Tree::Error`] nodes
    /// whose yield (including skipped tokens) still spells the entire
    /// input. `None` when the parse ended in an internal error or abort.
    pub fn tree(&self) -> Option<&Tree> {
        match &self.outcome {
            ParseOutcome::Unique(t) | ParseOutcome::Ambig(t) => Some(t),
            _ => self.error_tree.as_ref(),
        }
    }

    /// Consumes the result, yielding the tree (see [`RecoveredParse::tree`]).
    pub fn into_tree(self) -> Option<Tree> {
        match self.outcome {
            ParseOutcome::Unique(t) | ParseOutcome::Ambig(t) => Some(t),
            _ => self.error_tree,
        }
    }
}

/// A resynchronization plan: skip `skip` input tokens, pop stack frames
/// until `target_frame` is on top, then advance that frame's dot to
/// `target_dot` (whose symbol can accept the next input token).
struct Plan {
    skip: usize,
    target_frame: usize,
    target_dot: usize,
}

/// Drives `machine` to completion, recovering from every rejection.
/// `max_recoveries` bounds how many errors are recovered before giving up
/// with [`AbortReason::RecoveryLimit`].
pub(crate) fn run_recovering<O: ParseObserver>(
    analysis: &GrammarAnalysis,
    mut machine: Machine<'_>,
    cache: &mut SllCache,
    obs: &mut O,
    max_recoveries: Option<u64>,
) -> RecoveredParse {
    let tokens = machine.tokens();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut last_recovery_cursor: Option<usize> = None;

    let start = machine.grammar().start();
    let (error_tree, outcome) = loop {
        // Recovery can leave error nodes as siblings of the root in the
        // bottom frame; the machine's accept step requires exactly one
        // final tree, so fold them under a start-symbol node first.
        if !diagnostics.is_empty() {
            normalize_final_forest(&mut machine, tokens.len(), start);
        }
        match machine.step_observed(cache, obs) {
            StepResult::Cont => continue,
            StepResult::Accept(tree) => {
                // Clean parses hand the tree to the outcome (mirroring
                // `Parser::parse` with no clone); recovered parses keep
                // the error tree alongside the first rejection.
                break match diagnostics.first() {
                    Some(d) => (Some(tree), ParseOutcome::Reject(d.reason.clone())),
                    None if machine.state().unique => (None, ParseOutcome::Unique(tree)),
                    None => (None, ParseOutcome::Ambig(tree)),
                };
            }
            StepResult::Error(e) => break (None, ParseOutcome::Error(e)),
            StepResult::Abort(r) => break (None, ParseOutcome::Aborted(r)),
            StepResult::Reject(reason) => {
                if let Some(limit) = max_recoveries {
                    if diagnostics.len() as u64 >= limit {
                        let abort = AbortReason::RecoveryLimit { limit };
                        obs.on_abort(&abort);
                        break (None, ParseOutcome::Aborted(abort));
                    }
                }
                let cursor = machine.state().cursor;
                obs.on_recovery(cursor, &reason);
                let force_skip = last_recovery_cursor == Some(cursor);
                last_recovery_cursor = Some(cursor);
                let diag = recover_once(analysis, &mut machine, tokens, obs, reason, force_skip);
                diagnostics.push(diag);
            }
        }
    };
    obs.on_finish(machine.steps_taken());
    RecoveredParse {
        error_tree,
        diagnostics,
        outcome,
    }
}

/// If the machine has reached its final configuration (one exhausted
/// frame, all input consumed) but recovery left several trees in the
/// bottom frame — error nodes alongside the root — wraps them all under
/// one start-symbol node so the machine's accept step can fire.
fn normalize_final_forest(machine: &mut Machine<'_>, input_len: usize, start: NonTerminal) {
    let st = machine.state_mut();
    if st.cursor < input_len || st.suffix.len() != 1 {
        return;
    }
    let exhausted = st.suffix.first().is_some_and(SuffixFrame::is_exhausted);
    if !exhausted {
        return;
    }
    if let Some(bottom) = st.prefix.first_mut() {
        if bottom.trees.len() > 1 {
            let forest = std::mem::take(&mut bottom.trees);
            bottom.trees.push(Tree::Node(start, forest));
        }
    }
}

/// Performs one panic-mode recovery for `reason`, mutating the machine
/// state so the next step can make progress. Returns the diagnostic.
fn recover_once<O: ParseObserver>(
    analysis: &GrammarAnalysis,
    machine: &mut Machine<'_>,
    tokens: &[Token],
    obs: &mut O,
    reason: RejectReason,
    force_skip: bool,
) -> Diagnostic {
    let expected = expected_terminals(analysis, &reason);
    let (skipped, popped) = match reason {
        RejectReason::TrailingInput { .. } => {
            // The parse is complete but input remains: absorb the tail
            // into an error node spliced into the root.
            let n = absorb_trailing(machine, tokens, obs, &reason);
            (n, 0)
        }
        RejectReason::UnexpectedEnd { .. } => {
            // Input ended mid-production: close every open frame.
            let popped = close_all_frames(machine, Vec::new(), &reason);
            (0, popped)
        }
        RejectReason::TokenMismatch { .. } | RejectReason::NoViableAlternative { .. } => {
            match find_plan(analysis, machine, tokens, &reason, force_skip) {
                Some(plan) => execute_plan(machine, tokens, obs, &reason, plan),
                None => {
                    // No resynchronization point anywhere in the remaining
                    // input: skip it all and close out the parse.
                    let mut skipped_tokens = Vec::new();
                    skip_tokens(machine, tokens, obs, tokens.len(), &mut skipped_tokens);
                    let n = skipped_tokens.len();
                    let popped = close_all_frames(machine, skipped_tokens, &reason);
                    (n, popped)
                }
            }
        }
    };
    Diagnostic {
        at: reason.position().unwrap_or(tokens.len()),
        span: reason.span(),
        reason,
        expected,
        skipped,
        popped,
    }
}

/// The terminals acceptable at the error point, for diagnostics.
fn expected_terminals(analysis: &GrammarAnalysis, reason: &RejectReason) -> Vec<Terminal> {
    match reason {
        RejectReason::TokenMismatch { expected, .. }
        | RejectReason::UnexpectedEnd { expected, .. } => vec![*expected],
        RejectReason::TrailingInput { .. } => Vec::new(),
        RejectReason::NoViableAlternative { nonterminal, .. } => {
            analysis.first.first(*nonterminal).iter().collect()
        }
    }
}

/// Searches the remaining input for the nearest resynchronization point:
/// the first token (starting `force_skip as usize` tokens ahead) that some
/// open frame could consume after popping the frames above it and/or
/// advancing its dot past missing symbols. The grammar's precomputed sync
/// sets serve as a cheap candidate filter before the exact per-frame scan.
fn find_plan(
    analysis: &GrammarAnalysis,
    machine: &Machine<'_>,
    tokens: &[Token],
    reason: &RejectReason,
    force_skip: bool,
) -> Option<Plan> {
    let st = machine.state();
    let cursor = st.cursor;

    // Candidate filter: FIRST of every unprocessed symbol, plus the sync
    // set (FIRST ∪ FOLLOW) of every open nonterminal.
    let mut candidates = costar_grammar::TermSet::with_capacity(0);
    for frame in &st.suffix {
        for &sym in frame.unprocessed() {
            match sym {
                Symbol::T(a) => {
                    candidates.insert(a);
                }
                Symbol::Nt(x) => {
                    candidates.union_with(analysis.first.first(x));
                }
            }
        }
        if let Some(x) = frame.caller {
            candidates.union_with(analysis.sync.sync(x));
        }
    }

    // The exact stuck decision must not be offered as a "resync" target,
    // or a failed prediction would retry itself forever.
    let stuck_nt = match reason {
        RejectReason::NoViableAlternative { nonterminal, .. } => Some(*nonterminal),
        _ => None,
    };

    let top = st.suffix.len().checked_sub(1)?;
    for k in usize::from(force_skip)..tokens.len().saturating_sub(cursor) {
        let t = tokens.get(cursor + k)?;
        let term = t.terminal();
        if !candidates.contains(term) {
            continue;
        }
        // Innermost frame first: prefer finishing the current production.
        for i in (0..st.suffix.len()).rev() {
            let frame = st.suffix.get(i)?;
            for dot in frame.dot..frame.rhs.len() {
                let accepts = match frame.rhs.get(dot) {
                    Some(Symbol::T(a)) => *a == term,
                    Some(Symbol::Nt(x)) => {
                        // Skip the decision that just failed at this exact
                        // position (k == 0, top frame, current dot), and —
                        // unless the plan skips input — any nonterminal
                        // that would still be open after the plan's pops:
                        // re-pushing it at the same position would trip
                        // the machine's dynamic left-recursion detector.
                        let stuck_here = k == 0
                            && ((i == top && dot == frame.dot && Some(*x) == stuck_nt)
                                || open_after_pops(st, i, *x));
                        !stuck_here && analysis.first.first(*x).contains(term)
                    }
                    None => false,
                };
                if accepts {
                    return Some(Plan {
                        skip: k,
                        target_frame: i,
                        target_dot: dot,
                    });
                }
            }
        }
    }
    None
}

/// Would `x` remain in the machine's same-position `visited` set after a
/// plan targeting frame `target` pops every frame above it? The pops
/// remove the popped frames' callers from `visited`, so `x` stays open
/// only if it is visited now and is not one of those callers.
fn open_after_pops(st: &crate::state::MachineState, target: usize, x: NonTerminal) -> bool {
    st.visited.contains(x)
        && !st
            .suffix
            .iter()
            .skip(target.saturating_add(1))
            .any(|f| f.caller == Some(x))
}

/// Applies a [`Plan`]: skips input, pops frames (preserving their partial
/// trees), advances the target dot, and splices one error node carrying
/// the skipped tokens. Returns `(tokens_skipped, frames_popped)`.
fn execute_plan<O: ParseObserver>(
    machine: &mut Machine<'_>,
    tokens: &[Token],
    obs: &mut O,
    reason: &RejectReason,
    plan: Plan,
) -> (usize, usize) {
    let mut skipped_tokens = Vec::new();
    let end = machine.state().cursor.saturating_add(plan.skip);
    skip_tokens(machine, tokens, obs, end, &mut skipped_tokens);
    let st = machine.state_mut();
    let mut popped = 0usize;
    while st.suffix.len() > plan.target_frame.saturating_add(1) {
        let (Some(done), Some(partial)) = (st.suffix.pop(), st.prefix.pop()) else {
            break;
        };
        if let (Some(x), Some(below)) = (done.caller, st.prefix.last_mut()) {
            // Preserve the abandoned frame's partial derivation as an
            // (incomplete) node — its consumed tokens stay in the tree.
            below.trees.push(Tree::Node(x, partial.trees));
            st.visited.remove(x);
        }
        popped += 1;
    }
    if let Some(frame) = st.suffix.last_mut() {
        frame.dot = plan.target_dot;
    }
    let n = skipped_tokens.len();
    let node = error_node(reason, skipped_tokens);
    if let Some(frame) = st.prefix.last_mut() {
        frame.trees.push(Tree::Error(node));
    }
    (n, popped)
}

/// Skips tokens up to (not including) input position `end`, firing
/// [`ParseObserver::on_resync_skip`] per token.
fn skip_tokens<O: ParseObserver>(
    machine: &mut Machine<'_>,
    tokens: &[Token],
    obs: &mut O,
    end: usize,
    out: &mut Vec<Token>,
) {
    let st = machine.state_mut();
    let before = st.cursor;
    while st.cursor < end {
        if let Some(t) = tokens.get(st.cursor) {
            obs.on_resync_skip(st.cursor);
            out.push(t.clone());
        }
        st.cursor += 1;
    }
    if st.cursor > before {
        // The cursor moved, so the machine's same-position left-recursion
        // guard resets — exactly what its own consume step does.
        st.visited.clear();
    }
}

/// Trailing-input recovery: the bottom frame is exhausted but tokens
/// remain. Skips them all into one error node spliced into the root
/// node's children (keeping the final frame's single-tree shape, so the
/// machine's own accept step still fires). Returns the skip count.
fn absorb_trailing<O: ParseObserver>(
    machine: &mut Machine<'_>,
    tokens: &[Token],
    obs: &mut O,
    reason: &RejectReason,
) -> usize {
    let mut skipped_tokens = Vec::new();
    skip_tokens(machine, tokens, obs, tokens.len(), &mut skipped_tokens);
    let n = skipped_tokens.len();
    let node = error_node(reason, skipped_tokens);
    let st = machine.state_mut();
    match st.prefix.first_mut().and_then(|f| f.trees.last_mut()) {
        Some(Tree::Node(_, children)) => children.push(Tree::Error(node)),
        _ => {
            if let Some(f) = st.prefix.first_mut() {
                f.trees.push(Tree::Error(node));
            }
        }
    }
    n
}

/// End-of-input recovery: splices one error node (carrying any
/// already-skipped tokens) at the deepest open position, then closes
/// every open frame so the machine's next step accepts. Returns the
/// number of frames popped.
fn close_all_frames(
    machine: &mut Machine<'_>,
    skipped_tokens: Vec<Token>,
    reason: &RejectReason,
) -> usize {
    let st = machine.state_mut();
    let node = error_node(reason, skipped_tokens);
    if let Some(frame) = st.prefix.last_mut() {
        frame.trees.push(Tree::Error(node));
    }
    let mut popped = 0usize;
    while st.suffix.len() > 1 {
        let (Some(done), Some(partial)) = (st.suffix.pop(), st.prefix.pop()) else {
            break;
        };
        if let (Some(x), Some(below)) = (done.caller, st.prefix.last_mut()) {
            below.trees.push(Tree::Node(x, partial.trees));
            st.visited.remove(x);
        }
        popped += 1;
    }
    if let Some(bottom) = st.suffix.first_mut() {
        bottom.dot = bottom.rhs.len();
    }
    popped
}

/// Builds the error node for one recovery: span from the first skipped
/// token when there is one, else from the rejection itself.
fn error_node(reason: &RejectReason, skipped: Vec<Token>) -> ErrorNode {
    let span = skipped
        .first()
        .map(|t| t.span())
        .filter(|s| s.has_position() || s.offset != 0)
        .unwrap_or_else(|| reason.span());
    ErrorNode {
        span,
        skipped,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::machine::ParseOutcome;
    use crate::observe::MetricsObserver;
    use crate::parser::Parser;
    use costar_grammar::{tokens, GrammarBuilder, Token};

    fn fig2() -> Parser {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        Parser::new(gb.start("S").build().unwrap())
    }

    fn word(p: &Parser, names: &[&str]) -> Vec<Token> {
        let mut tab = p.grammar().symbols().clone();
        let pairs: Vec<(&str, &str)> = names.iter().map(|&n| (n, n)).collect();
        tokens(&mut tab, &pairs)
    }

    #[test]
    fn valid_input_is_untouched() {
        let mut p = fig2();
        let w = word(&p, &["a", "a", "b", "d"]);
        let plain = p.parse(&w);
        let recovered = p.parse_recovering(&w);
        assert!(recovered.is_clean());
        assert!(recovered.diagnostics.is_empty());
        assert_eq!(recovered.tree(), plain.tree());
        assert_eq!(recovered.outcome, plain);
        assert!(!recovered.into_tree().unwrap().has_errors());
    }

    #[test]
    fn corrupt_token_recovers_with_full_yield() {
        let mut p = fig2();
        // "a b x d": ALL(*) prediction scans the whole input, so the
        // corrupt token kills both S alternatives at the first decision —
        // the rejection surfaces as NoViableAlternative at position 0.
        let w = word(&p, &["a", "b", "x", "d"]);
        let r = p.parse_recovering(&w);
        assert!(!r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        // The outcome still reports the word as rejected.
        assert!(matches!(r.outcome, ParseOutcome::Reject(_)));
        assert!(!r.is_clean());
        let tree = r.tree().expect("recovery must yield a tree");
        assert!(tree.has_errors());
        // Every input token survives in the yield (leaves + skipped).
        assert_eq!(tree.yield_tokens().len(), w.len());
    }

    #[test]
    fn token_mismatch_after_committed_prediction_recovers() {
        // stmt has a single alternative, so the machine pushes it without
        // prediction and the corrupt token surfaces as a real consume
        // failure (TokenMismatch) mid-production.
        let mut gb = GrammarBuilder::new();
        gb.rule("stmt", &["id", "=", "num"]);
        let mut p = Parser::new(gb.start("stmt").build().unwrap());
        let w = word(&p, &["id", "?", "num"]);
        let r = p.parse_recovering(&w);
        assert!(matches!(
            r.diagnostics.first().map(|d| &d.reason),
            Some(RejectReason::TokenMismatch { at: 1, .. })
        ));
        let tree = r.tree().expect("tree");
        assert!(tree.has_errors());
        assert_eq!(tree.yield_tokens().len(), 3);
    }

    #[test]
    fn trailing_input_absorbed_into_root() {
        let mut p = fig2();
        let w = word(&p, &["b", "d", "b", "d"]);
        let r = p.parse_recovering(&w);
        assert_eq!(r.diagnostics.len(), 1);
        assert!(matches!(
            r.diagnostics[0].reason,
            RejectReason::TrailingInput { at: 2, .. }
        ));
        assert_eq!(r.diagnostics[0].skipped, 2);
        let tree = r.tree().expect("tree");
        assert_eq!(tree.yield_tokens().len(), 4);
        assert!(tree.root_symbol().is_some(), "root stays the start symbol");
    }

    #[test]
    fn unexpected_end_closes_open_frames() {
        // pair is LL(1): '(' commits the recursive alternative through the
        // static fast path, so truncated input surfaces as UnexpectedEnd
        // with the frames for both open parens still on the stack.
        let mut gb = GrammarBuilder::new();
        gb.rule("pair", &["(", "pair", ")"]);
        gb.rule("pair", &["x"]);
        let mut p = Parser::new(gb.start("pair").build().unwrap());
        let w = word(&p, &["(", "(", "x"]);
        let r = p.parse_recovering(&w);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert!(matches!(
            r.diagnostics[0].reason,
            RejectReason::UnexpectedEnd { .. }
        ));
        assert!(r.diagnostics[0].popped > 0, "open frames were closed");
        let tree = r.tree().expect("tree");
        assert!(tree.has_errors());
        assert_eq!(tree.yield_tokens().len(), 3);
    }

    #[test]
    fn empty_input_recovers_to_error_root() {
        let mut p = fig2();
        let r = p.parse_recovering(&[]);
        assert_eq!(r.diagnostics.len(), 1);
        let tree = r.tree().expect("tree");
        assert!(tree.has_errors());
        assert!(tree.yield_tokens().is_empty());
    }

    #[test]
    fn multiple_errors_yield_multiple_diagnostics() {
        // A statement-list grammar where recovery can resynchronize on the
        // next statement after a bad one.
        let mut gb = GrammarBuilder::new();
        gb.rule("list", &["stmt", ";", "list"]);
        gb.rule("list", &["stmt", ";"]);
        gb.rule("stmt", &["id", "=", "num"]);
        let mut p = Parser::new(gb.start("list").build().unwrap());
        // Two corrupted statements (bad token in place of `=`), one good.
        let w = word(
            &p,
            &[
                "id", "?", "num", ";", "id", "=", "num", ";", "id", "?", "num", ";",
            ],
        );
        let r = p.parse_recovering(&w);
        assert!(
            r.diagnostics.len() >= 2,
            "both corrupted statements must be reported: {:?}",
            r.diagnostics
        );
        let tree = r.tree().expect("tree");
        assert_eq!(tree.yield_tokens().len(), w.len());
        // The first diagnostic's reason is the outcome's reject reason.
        match (&r.outcome, &r.diagnostics[0].reason) {
            (ParseOutcome::Reject(a), b) => assert_eq!(a, b),
            other => panic!("expected Reject outcome: {other:?}"),
        }
    }

    #[test]
    fn garbage_input_terminates() {
        let mut p = fig2();
        let w = word(&p, &["x", "x", "x", "x", "x", "x"]);
        let r = p.parse_recovering(&w);
        assert!(!r.diagnostics.is_empty());
        let tree = r.tree().expect("even pure garbage produces a tree");
        assert_eq!(tree.yield_tokens().len(), w.len());
    }

    #[test]
    fn recovery_limit_aborts() {
        let mut gb = GrammarBuilder::new();
        gb.rule("list", &["stmt", ";", "list"]);
        gb.rule("list", &["stmt", ";"]);
        gb.rule("stmt", &["id", "=", "num"]);
        let g = gb.start("list").build().unwrap();
        let mut p = Parser::with_budget(g, Budget::unlimited().with_max_recoveries(1));
        let w = word(
            &p,
            &[
                "id", "?", "num", ";", "id", "?", "num", ";", "id", "?", "num", ";",
            ],
        );
        let r = p.parse_recovering(&w);
        assert!(
            matches!(
                r.outcome,
                ParseOutcome::Aborted(AbortReason::RecoveryLimit { limit: 1 })
            ),
            "{:?}",
            r.outcome
        );
        assert_eq!(r.diagnostics.len(), 1, "the first recovery still ran");
        assert!(r.tree().is_none());

        // Zero cap: the very first rejection aborts.
        p.set_budget(Budget::unlimited().with_max_recoveries(0));
        let r = p.parse_recovering(&w);
        assert!(matches!(
            r.outcome,
            ParseOutcome::Aborted(AbortReason::RecoveryLimit { limit: 0 })
        ));
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn observer_counts_recoveries_and_skips() {
        let mut p = fig2();
        let w = word(&p, &["a", "b", "x", "d"]);
        let mut obs = MetricsObserver::new();
        let r = p.parse_recovering_observed(&w, &mut obs);
        let m = obs.into_metrics();
        assert_eq!(m.recoveries, r.diagnostics.len() as u64);
        assert_eq!(
            m.tokens_skipped,
            r.diagnostics.iter().map(|d| d.skipped as u64).sum::<u64>()
        );
        assert!(m.reconciles(), "recovery must not break reconciliation");
    }

    #[test]
    fn diagnostics_carry_expected_sets_and_positions() {
        let mut gb = GrammarBuilder::new();
        gb.rule("stmt", &["id", "=", "num"]);
        let mut p = Parser::new(gb.start("stmt").build().unwrap());
        let w = word(&p, &["id", "?", "num"]);
        let r = p.parse_recovering(&w);
        let d = &r.diagnostics[0];
        assert_eq!(d.at, 1);
        let eq = p.grammar().symbols().lookup_terminal("=").unwrap();
        assert_eq!(d.expected, vec![eq], "the failed consume names its want");
        assert!(d.skipped >= 1);
        assert!(d.to_string().contains("skipped"), "{d}");
    }

    #[test]
    fn recovered_tree_yield_spells_the_input() {
        let mut p = fig2();
        let w = word(&p, &["a", "b", "x", "d"]);
        let r = p.parse_recovering(&w);
        let tree = r.tree().expect("tree");
        let got: Vec<_> = tree.yield_tokens().iter().map(Token::terminal).collect();
        let want: Vec<_> = w.iter().map(Token::terminal).collect();
        assert_eq!(got, want, "the recovered yield must spell the input");
    }
}
