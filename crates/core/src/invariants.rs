//! Executable machine-state invariants (paper §5.2, Fig. 4).
//!
//! CoStar's proofs proceed by showing that each machine step preserves
//! invariants over the machine state; the invariants then entail the
//! big-step properties. Rust has no proofs, so the invariants become
//! *checkers*: [`crate::instrument::run_instrumented`] evaluates them
//! after every step, and the property tests fuzz them across random
//! grammars and inputs. A checker returning an error on any reachable
//! state would falsify the corresponding preservation lemma
//! (Lemma 5.2 for stack well-formedness).

use crate::state::MachineState;
use costar_grammar::{forest_roots, has_production, Grammar, Symbol, Token, Tree};
use std::fmt;

/// A violated invariant, naming the rule that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// What about the state violated it.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant {} violated: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(invariant: &'static str, detail: String) -> Result<(), InvariantViolation> {
    Err(InvariantViolation { invariant, detail })
}

/// `StacksWf_I` (paper Fig. 4): the prefix and suffix stacks are
/// well-formed.
///
/// * The stacks have equal height.
/// * The bottom suffix frame holds exactly the start symbol and has no
///   caller.
/// * Every upper frame pair instantiates a grammar production for the
///   caller nonterminal recorded in the suffix frame, and the caller
///   frame's last-processed symbol is that nonterminal.
/// * In every frame, the roots of the prefix forest spell the processed
///   symbols `rhs[..dot]` of the matching suffix frame.
///
/// # Errors
///
/// Returns the first violation found, scanning bottom-up.
pub fn check_stacks_wf(g: &Grammar, state: &MachineState) -> Result<(), InvariantViolation> {
    const NAME: &str = "StacksWf_I";
    if state.prefix.len() != state.suffix.len() {
        return violation(
            NAME,
            format!(
                "stack heights differ: prefix {}, suffix {}",
                state.prefix.len(),
                state.suffix.len()
            ),
        );
    }
    if state.suffix.is_empty() {
        return violation(NAME, "suffix stack is empty".to_owned());
    }

    let bottom = &state.suffix[0];
    if bottom.caller.is_some() {
        return violation(NAME, "bottom frame has a caller".to_owned());
    }
    if bottom.rhs.as_ref() != [Symbol::Nt(g.start())] {
        return violation(
            NAME,
            "bottom frame does not hold the start symbol".to_owned(),
        );
    }

    let top = state.suffix.len() - 1;
    for (i, frame) in state.suffix.iter().enumerate() {
        if frame.dot > frame.rhs.len() {
            return violation(NAME, format!("frame {i} dot out of range"));
        }
        // Prefix forest roots must spell the processed symbols. A frame
        // with a frame above it is mid-push: its dot has already passed
        // the open nonterminal, whose tree arrives at return time, so its
        // forest covers `rhs[..dot-1]`.
        let processed = if i == top {
            &frame.rhs[..frame.dot]
        } else {
            if frame.dot == 0 {
                return violation(
                    NAME,
                    format!("non-top frame {i} has not passed its open nonterminal"),
                );
            }
            &frame.rhs[..frame.dot - 1]
        };
        let roots = forest_roots(&state.prefix[i].trees);
        if roots != processed {
            return violation(
                NAME,
                format!("frame {i}: prefix forest roots do not spell the processed symbols"),
            );
        }
        if i == 0 {
            continue;
        }
        // Upper frames: the caller is recorded, instantiates a production,
        // and sits just before the caller frame's dot (the machine
        // advances the caller's dot at push time).
        let Some(x) = frame.caller else {
            return violation(NAME, format!("upper frame {i} has no caller"));
        };
        if !has_production(g, x, &frame.rhs) {
            return violation(NAME, format!("frame {i} is not a production of its caller"));
        }
        let below = &state.suffix[i - 1];
        if below.dot == 0 || below.rhs.get(below.dot - 1) != Some(&Symbol::Nt(x)) {
            return violation(
                NAME,
                format!("frame {i}'s caller is not the symbol before the dot below"),
            );
        }
    }
    Ok(())
}

/// The visited-set invariant backing Lemma 5.10's soundness argument
/// (§5.4.2), in its checkable structural form: every visited nonterminal
/// is the caller of some suffix frame above the last consume — i.e. it has
/// been opened and not yet fully processed.
pub fn check_visited(state: &MachineState) -> Result<(), InvariantViolation> {
    const NAME: &str = "Visited_I";
    for x in state.visited.iter() {
        let open = state.suffix.iter().any(|f| f.caller == Some(x));
        if !open {
            return violation(
                NAME,
                format!("visited nonterminal {x} is not open on the suffix stack"),
            );
        }
    }
    Ok(())
}

/// The derivation component of `UniqeDer_I` (paper Fig. 5): the prefix
/// stack holds a partial parse of exactly the consumed input. Concretely:
///
/// * concatenating the yields of all prefix-frame forests (bottom-up)
///   reproduces `word[..cursor]` token for token;
/// * every tree stored on the prefix stack is internally well-formed —
///   each interior node instantiates a grammar production.
///
/// (The *uniqueness* quantification of `UniqeDer_I` — "no other partial
/// tree exists" — ranges over all alternative derivations and is checked
/// end-to-end against the derivation-counting oracle in the integration
/// suites instead.)
pub fn check_prefix_derivation(
    g: &Grammar,
    state: &MachineState,
    word: &[Token],
) -> Result<(), InvariantViolation> {
    const NAME: &str = "PrefixDer_I";
    let mut consumed: Vec<&Token> = Vec::new();
    for (i, frame) in state.prefix.iter().enumerate() {
        for tree in &frame.trees {
            if let Err(detail) = check_subtree(g, tree) {
                return violation(NAME, format!("frame {i}: {detail}"));
            }
            collect_yield(tree, &mut consumed);
        }
    }
    if state.cursor > word.len() {
        return violation(NAME, "cursor beyond end of input".to_owned());
    }
    let expected = &word[..state.cursor];
    if consumed.len() != expected.len()
        || consumed
            .iter()
            .zip(expected)
            .any(|(a, b)| a.terminal() != b.terminal())
    {
        return violation(
            NAME,
            format!(
                "prefix forests yield {} tokens, cursor consumed {}",
                consumed.len(),
                expected.len()
            ),
        );
    }
    Ok(())
}

fn collect_yield<'t>(tree: &'t Tree, out: &mut Vec<&'t Token>) {
    match tree {
        Tree::Leaf(t) => out.push(t),
        Tree::Node(_, children) => {
            for c in children {
                collect_yield(c, out);
            }
        }
        // Recovery error nodes hold the skipped tokens; those tokens were
        // consumed from the input, so they count toward the yield.
        Tree::Error(e) => out.extend(e.skipped.iter()),
    }
}

/// Every interior node of a stored tree must instantiate a production.
fn check_subtree(g: &Grammar, tree: &Tree) -> Result<(), String> {
    match tree {
        Tree::Leaf(_) => Ok(()),
        // Error nodes are recovery splices, not derivations; they are
        // transparent to the production check (forest_roots skips them).
        Tree::Error(_) => Ok(()),
        Tree::Node(x, children) => {
            // A node that received an error splice no longer instantiates
            // its production exactly; only pristine nodes are checked.
            if !children.iter().any(|c| matches!(c, Tree::Error(_))) {
                let roots = forest_roots(children);
                if !has_production(g, *x, &roots) {
                    return Err(format!("stored node for {x} matches no production"));
                }
            }
            children.iter().try_for_each(|c| check_subtree(g, c))
        }
    }
}

/// Runs every invariant checker.
pub fn check_all(g: &Grammar, state: &MachineState) -> Result<(), InvariantViolation> {
    check_stacks_wf(g, state)?;
    check_visited(state)?;
    Ok(())
}

/// Runs every invariant checker, including the input-dependent
/// partial-derivation invariant.
pub fn check_all_with_input(
    g: &Grammar,
    state: &MachineState,
    word: &[Token],
) -> Result<(), InvariantViolation> {
    check_all(g, state)?;
    check_prefix_derivation(g, state, word)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{MachineState, PrefixFrame, SuffixFrame};
    use costar_grammar::{GrammarBuilder, NonTerminal, Token, Tree};
    use std::sync::Arc;

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn initial_state_is_well_formed() {
        let g = fig2();
        let st = MachineState::initial(g.start(), g.num_nonterminals());
        assert!(check_all(&g, &st).is_ok());
    }

    #[test]
    fn height_mismatch_detected() {
        let g = fig2();
        let mut st = MachineState::initial(g.start(), g.num_nonterminals());
        st.prefix.push(PrefixFrame::default());
        let err = check_stacks_wf(&g, &st).unwrap_err();
        assert!(err.detail.contains("heights differ"));
    }

    #[test]
    fn wrong_bottom_symbol_detected() {
        let g = fig2();
        let a = g.symbols().lookup_nonterminal("A").unwrap();
        let st = MachineState::initial(a, g.num_nonterminals());
        let err = check_stacks_wf(&g, &st).unwrap_err();
        assert!(err.detail.contains("start symbol"));
    }

    #[test]
    fn bogus_upper_frame_detected() {
        let g = fig2();
        let s = g.start();
        let a = g.symbols().lookup_nonterminal("A").unwrap();
        let mut st = MachineState::initial(s, g.num_nonterminals());
        // Fake a push of a non-production frame for A.
        st.suffix[0].dot = 1;
        st.suffix.push(SuffixFrame {
            caller: Some(a),
            rhs: Arc::from([Symbol::Nt(s)]), // not a production of A
            dot: 0,
        });
        st.prefix.push(PrefixFrame::default());
        // The bottom prefix frame must spell [S] processed... it doesn't,
        // so fix that part up first to reach the production check.
        st.prefix[0].trees.push(Tree::Node(s, vec![]));
        let err = check_stacks_wf(&g, &st).unwrap_err();
        // Either the forest-roots rule (bottom holds Node(S) but S -> ε is
        // not relevant here) or the production rule fires; both are
        // violations of StacksWf_I.
        assert_eq!(err.invariant, "StacksWf_I");
    }

    #[test]
    fn prefix_roots_must_match_processed_symbols() {
        let g = fig2();
        let mut st = MachineState::initial(g.start(), g.num_nonterminals());
        let b = g.symbols().lookup_terminal("b").unwrap();
        st.prefix[0].trees.push(Tree::Leaf(Token::new(b, "b")));
        let err = check_stacks_wf(&g, &st).unwrap_err();
        assert!(err.detail.contains("roots"));
    }

    #[test]
    fn prefix_derivation_checks_yield_against_cursor() {
        let g = fig2();
        let b = g.symbols().lookup_terminal("b").unwrap();
        let word = vec![Token::new(b, "b")];
        let mut st = MachineState::initial(g.start(), g.num_nonterminals());
        // Initially: nothing consumed, empty forests — holds.
        assert!(check_prefix_derivation(&g, &st, &word).is_ok());
        // A leaf stored without advancing the cursor violates it.
        st.prefix[0].trees.push(Tree::Leaf(word[0].clone()));
        let err = check_prefix_derivation(&g, &st, &word).unwrap_err();
        assert_eq!(err.invariant, "PrefixDer_I");
        // Advancing the cursor restores it.
        st.cursor = 1;
        assert!(check_prefix_derivation(&g, &st, &word).is_ok());
    }

    #[test]
    fn prefix_derivation_rejects_malformed_stored_trees() {
        let g = fig2();
        let b = g.symbols().lookup_terminal("b").unwrap();
        let s = g.start();
        let word = vec![Token::new(b, "b")];
        let mut st = MachineState::initial(s, g.num_nonterminals());
        // Node(S, [Leaf b]) is not a production of S.
        st.prefix[0]
            .trees
            .push(Tree::Node(s, vec![Tree::Leaf(word[0].clone())]));
        st.cursor = 1;
        let err = check_prefix_derivation(&g, &st, &word).unwrap_err();
        assert!(err.detail.contains("no production"));
    }

    #[test]
    fn stray_visited_nonterminal_detected() {
        let g = fig2();
        let mut st = MachineState::initial(g.start(), g.num_nonterminals());
        st.visited.insert(NonTerminal::from_index(0));
        let err = check_visited(&st).unwrap_err();
        assert_eq!(err.invariant, "Visited_I");
        assert!(err.to_string().contains("not open"));
    }
}
