//! The SLL prediction cache `Δ` (paper §2, §3.4).
//!
//! `adaptivePredict` caches each SLL analysis step as a transition in a
//! DFA whose states are canonical sets of subparser configurations. Before
//! performing an analysis step, SLL prediction consults the cache; on a
//! miss it computes the step (move + closure) and records the transition.
//! This memoization is what makes ALL(*) fast in practice.
//!
//! CoStar as published rebuilds the cache for every input; ANTLR reuses it
//! across inputs (the effect measured in the paper's Fig. 11). This
//! implementation supports both policies — see
//! [`Parser`](crate::Parser) — by making the cache an explicit value.

use crate::prediction::sim::{distinct_alts, Config, SpState};
use costar_grammar::{NonTerminal, ProdId, Terminal};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of an interned DFA state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct StateId(pub(crate) u32);

/// What an interned state already tells us without reading more input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resolution {
    /// Every surviving subparser votes for this alternative.
    Unique(ProdId),
    /// No subparser survives.
    Reject,
    /// Multiple alternatives still compete; more input is needed.
    Pending,
}

/// What the state resolves to if the input ends here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EofResolution {
    /// Exactly one alternative accepts at end of input.
    Unique(ProdId),
    /// No alternative accepts at end of input.
    Reject,
    /// Several alternatives accept: an SLL conflict — fail over to LL
    /// (paper §3.4), which re-examines the decision with full context.
    Conflict(ProdId),
}

#[derive(Debug)]
pub(crate) struct StateData {
    /// Canonically sorted configuration set.
    pub configs: Arc<[Config]>,
    pub resolution: Resolution,
    eof: Option<EofResolution>,
}

/// Counters describing prediction behavior over the parses the cache has
/// served: how decisions resolved and how much lookahead they needed.
/// The original ALL(*) evaluation reports exactly these quantities (SLL
/// suffices almost always; lookahead is usually 1–2 tokens), and the
/// CoStar paper's §3.4 failover design is motivated by them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionStats {
    /// Total `adaptivePredict` invocations (excluding single-alternative
    /// short-circuits).
    pub predictions: u64,
    /// Decisions short-circuited because the nonterminal has one
    /// alternative.
    pub single_alternative: u64,
    /// Decisions resolved by SLL (committed without failover).
    pub sll_resolved: u64,
    /// SLL conflicts that failed over to full LL prediction (§3.4).
    pub failovers: u64,
    /// Total lookahead tokens examined across decisions.
    pub lookahead_tokens: u64,
    /// The deepest lookahead any single decision needed.
    pub max_lookahead: usize,
}

impl PredictionStats {
    /// Mean lookahead per (non-short-circuited) decision.
    pub fn mean_lookahead(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.lookahead_tokens as f64 / self.predictions as f64
        }
    }
}

/// Counters describing cache effectiveness; used by the Fig. 11 style
/// cache-warm-up experiments and the `ablation_sll_cache` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of interned DFA states.
    pub states: usize,
    /// Number of recorded transitions.
    pub transitions: usize,
    /// Transition lookups answered from the cache.
    pub hits: u64,
    /// Transition lookups that required a fresh move+closure computation.
    pub misses: u64,
}

/// The SLL prediction cache: interned DFA states, start states per
/// decision nonterminal, and the transition table.
///
/// Create one with [`SllCache::new`] (or take it from a
/// [`Parser`](crate::Parser)); it may be reused across any number of
/// inputs *for the same grammar*.
#[derive(Debug, Default)]
pub struct SllCache {
    states: Vec<StateData>,
    intern: HashMap<Arc<[Config]>, StateId>,
    starts: HashMap<NonTerminal, StateId>,
    transitions: HashMap<(StateId, Terminal), StateId>,
    hits: u64,
    misses: u64,
    prediction_stats: PredictionStats,
}

impl SllCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards all cached states and transitions (e.g. when switching
    /// grammars; a cache must never be shared between grammars).
    pub fn clear(&mut self) {
        self.states.clear();
        self.intern.clear();
        self.starts.clear();
        self.transitions.clear();
        self.hits = 0;
        self.misses = 0;
        self.prediction_stats = PredictionStats::default();
    }

    /// Prediction-behavior counters accumulated since the last
    /// [`SllCache::clear`] (or construction).
    pub fn prediction_stats(&self) -> PredictionStats {
        self.prediction_stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut PredictionStats {
        &mut self.prediction_stats
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    pub(crate) fn state(&self, id: StateId) -> &StateData {
        &self.states[id.0 as usize]
    }

    /// Interns a configuration set (sorting it into canonical order) and
    /// computes its resolution.
    pub(crate) fn intern(&mut self, mut configs: Vec<Config>) -> StateId {
        configs.sort_unstable();
        configs.dedup();
        let key: Arc<[Config]> = configs.into();
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let alts = distinct_alts(&key);
        let resolution = match alts.as_slice() {
            [] => Resolution::Reject,
            [only] => Resolution::Unique(*only),
            _ => Resolution::Pending,
        };
        let id = StateId(self.states.len() as u32);
        self.states.push(StateData {
            configs: Arc::clone(&key),
            resolution,
            eof: None,
        });
        self.intern.insert(key, id);
        id
    }

    /// The cached start state for decision nonterminal `x`, if present.
    pub(crate) fn start_state(&self, x: NonTerminal) -> Option<StateId> {
        self.starts.get(&x).copied()
    }

    /// Records the start state for `x`.
    pub(crate) fn set_start_state(&mut self, x: NonTerminal, id: StateId) {
        self.starts.insert(x, id);
    }

    /// Looks up a cached transition, bumping hit/miss counters.
    pub(crate) fn transition(&mut self, from: StateId, t: Terminal) -> Option<StateId> {
        match self.transitions.get(&(from, t)) {
            Some(&to) => {
                self.hits += 1;
                Some(to)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a transition.
    pub(crate) fn set_transition(&mut self, from: StateId, t: Terminal, to: StateId) {
        self.transitions.insert((from, t), to);
    }

    /// The end-of-input resolution of a state, computed on first use and
    /// cached thereafter.
    pub(crate) fn eof_resolution(&mut self, id: StateId) -> EofResolution {
        let data = &self.states[id.0 as usize];
        if let Some(r) = data.eof {
            return r;
        }
        let eof_alts: Vec<ProdId> = {
            let mut alts: Vec<ProdId> = data
                .configs
                .iter()
                .filter(|c| matches!(c.state, SpState::AcceptEof))
                .map(|c| c.alt)
                .collect();
            alts.sort_unstable();
            alts.dedup();
            alts
        };
        let r = match eof_alts.as_slice() {
            [] => EofResolution::Reject,
            [only] => EofResolution::Unique(*only),
            [first, ..] => EofResolution::Conflict(*first),
        };
        self.states[id.0 as usize].eof = Some(r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prediction::sim::SimStack;

    fn cfg(alt: u32, state: SpState) -> Config {
        // ProdId is crate-private to costar-grammar; go through index 0..n
        // of a real grammar to mint ids.
        let g = {
            let mut gb = costar_grammar::GrammarBuilder::new();
            gb.rule("S", &["a"]);
            gb.rule("S", &["b"]);
            gb.rule("S", &["c"]);
            gb.start("S").build().unwrap()
        };
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        Config {
            alt: g.alternatives(s)[alt as usize],
            state,
        }
    }

    #[test]
    fn interning_is_canonical() {
        let mut cache = SllCache::new();
        let a = cfg(0, SpState::AcceptEof);
        let b = cfg(1, SpState::AcceptEof);
        let id1 = cache.intern(vec![a.clone(), b.clone()]);
        let id2 = cache.intern(vec![b, a]);
        assert_eq!(id1, id2);
        assert_eq!(cache.stats().states, 1);
    }

    #[test]
    fn resolution_classification() {
        let mut cache = SllCache::new();
        let empty = cache.intern(vec![]);
        assert_eq!(cache.state(empty).resolution, Resolution::Reject);
        let unique = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        assert!(matches!(
            cache.state(unique).resolution,
            Resolution::Unique(_)
        ));
        let pending = cache.intern(vec![cfg(0, SpState::AcceptEof), cfg(1, SpState::AcceptEof)]);
        assert_eq!(cache.state(pending).resolution, Resolution::Pending);
    }

    #[test]
    fn eof_resolution_variants() {
        let mut cache = SllCache::new();
        // Both alternatives accept EOF: conflict, resolved to the first.
        let conflict = cache.intern(vec![cfg(0, SpState::AcceptEof), cfg(1, SpState::AcceptEof)]);
        assert!(matches!(
            cache.eof_resolution(conflict),
            EofResolution::Conflict(_)
        ));
        // A pending state whose configs need more input rejects at EOF.
        let g = {
            let mut gb = costar_grammar::GrammarBuilder::new();
            gb.rule("S", &["a"]);
            gb.rule("S", &["b"]);
            gb.start("S").build().unwrap()
        };
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let stack = SimStack::empty().push(crate::prediction::sim::SimFrame {
            lhs: Some(s),
            rhs: g.rhs_arc(g.alternatives(s)[0]),
            dot: 0,
        });
        let not_eof = cache.intern(vec![
            Config {
                alt: g.alternatives(s)[0],
                state: SpState::Stack(stack.clone()),
            },
            Config {
                alt: g.alternatives(s)[1],
                state: SpState::Stack(stack),
            },
        ]);
        assert_eq!(cache.eof_resolution(not_eof), EofResolution::Reject);
        // Cached on second call.
        assert_eq!(cache.eof_resolution(not_eof), EofResolution::Reject);
    }

    #[test]
    fn transition_hit_miss_accounting() {
        let mut cache = SllCache::new();
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        let s1 = cache.intern(vec![cfg(1, SpState::AcceptEof)]);
        let t = Terminal::from_index(0);
        assert_eq!(cache.transition(s0, t), None);
        cache.set_transition(s0, t, s1);
        assert_eq!(cache.transition(s0, t), Some(s1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.transitions, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cache = SllCache::new();
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        cache.set_start_state(NonTerminal::from_index(0), s0);
        cache.set_transition(s0, Terminal::from_index(0), s0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.states, 0);
        assert_eq!(stats.transitions, 0);
        assert!(cache.start_state(NonTerminal::from_index(0)).is_none());
    }
}
