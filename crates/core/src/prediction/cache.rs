//! The SLL prediction cache `Δ` (paper §2, §3.4), with bounded capacity.
//!
//! `adaptivePredict` caches each SLL analysis step as a transition in a
//! DFA whose states are canonical sets of subparser configurations. Before
//! performing an analysis step, SLL prediction consults the cache; on a
//! miss it computes the step (move + closure) and records the transition.
//! This memoization is what makes ALL(*) fast in practice.
//!
//! CoStar as published rebuilds the cache for every input; ANTLR reuses it
//! across inputs (the effect measured in the paper's Fig. 11). This
//! implementation supports both policies — see
//! [`Parser`](crate::Parser) — by making the cache an explicit value.
//!
//! ## Bounded capacity
//!
//! An adversarial grammar/input pair can mint DFA states without bound
//! (the ALL(*) DFA is worst-case exponential in the grammar). The cache
//! therefore supports caps on entries and approximate bytes
//! ([`SllCache::set_capacity`], usually configured through a
//! [`Budget`](crate::Budget)): when a cap is exceeded, least-recently-used
//! states are evicted together with every transition and start-state
//! pointer that mentions them. Eviction is *safe by construction* — the
//! cache is a pure memo of derivable analysis, so the only cost of losing
//! an entry is re-deriving it on the next miss. The
//! [`CacheStats::evictions`] counter and the hit/miss counters make the
//! degradation observable.
//!
//! States in active use by an in-flight prediction are passed as a
//! protection set to [`SllCache::intern_protected`] and are never chosen
//! as victims, so a live `StateId` always resolves.

use crate::prediction::sim::{distinct_alts, Config, SpState};
use costar_grammar::{NonTerminal, ProdId, Terminal};
use std::collections::HashMap;
use std::mem;
use std::sync::Arc;

#[cfg(feature = "faults")]
use crate::faults::FaultPlan;

/// Identifier of an interned DFA state. Ids are minted from a monotonic
/// counter and never reused, so a stale id can never alias a newer state
/// after eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct StateId(pub(crate) u32);

/// What an interned state already tells us without reading more input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resolution {
    /// Every surviving subparser votes for this alternative.
    Unique(ProdId),
    /// No subparser survives.
    Reject,
    /// Multiple alternatives still compete; more input is needed.
    Pending,
}

/// What the state resolves to if the input ends here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EofResolution {
    /// Exactly one alternative accepts at end of input.
    Unique(ProdId),
    /// No alternative accepts at end of input.
    Reject,
    /// Several alternatives accept: an SLL conflict — fail over to LL
    /// (paper §3.4), which re-examines the decision with full context.
    Conflict(ProdId),
}

#[derive(Debug, Clone)]
pub(crate) struct StateData {
    /// Canonically sorted configuration set.
    pub configs: Arc<[Config]>,
    pub resolution: Resolution,
    eof: Option<EofResolution>,
    /// LRU tick of the last lookup that touched this state.
    last_used: u64,
    /// Approximate retained bytes attributed to this state.
    bytes: usize,
    /// Set only by fault injection: serving this entry would be a bug, so
    /// lookups drop it instead (see `CacheStats::poison_drops`).
    poisoned: bool,
}

/// Counters describing prediction behavior over the parses the cache has
/// served: how decisions resolved and how much lookahead they needed.
/// The original ALL(*) evaluation reports exactly these quantities (SLL
/// suffices almost always; lookahead is usually 1–2 tokens), and the
/// CoStar paper's §3.4 failover design is motivated by them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionStats {
    /// Total `adaptivePredict` invocations (excluding single-alternative
    /// short-circuits).
    pub predictions: u64,
    /// Decisions short-circuited because the nonterminal has one
    /// alternative.
    pub single_alternative: u64,
    /// Decisions resolved by SLL (committed without failover).
    pub sll_resolved: u64,
    /// SLL conflicts that failed over to full LL prediction (§3.4).
    pub failovers: u64,
    /// Decisions dispatched through the static LL(1) lookahead map,
    /// skipping simulation and cache traffic entirely.
    pub static_fast_path: u64,
    /// Total lookahead tokens examined across decisions.
    pub lookahead_tokens: u64,
    /// The deepest lookahead any single decision needed.
    pub max_lookahead: usize,
}

impl PredictionStats {
    /// Mean lookahead per (non-short-circuited) decision.
    pub fn mean_lookahead(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.lookahead_tokens as f64 / self.predictions as f64
        }
    }
}

/// Counters describing cache effectiveness; used by the Fig. 11 style
/// cache-warm-up experiments, the `ablation_sll_cache` bench, and the
/// bounded-cache degradation tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of interned DFA states currently resident.
    pub states: usize,
    /// Number of recorded transitions currently resident.
    pub transitions: usize,
    /// Transition lookups answered from the cache.
    pub hits: u64,
    /// Transition lookups that required a fresh move+closure computation.
    pub misses: u64,
    /// States evicted to stay under the configured capacity.
    pub evictions: u64,
    /// Poisoned entries detected at lookup and dropped instead of served
    /// (non-zero only under fault injection).
    pub poison_drops: u64,
    /// Approximate bytes currently retained by interned states.
    pub approx_bytes: usize,
}

/// The SLL prediction cache: interned DFA states, start states per
/// decision nonterminal, and the transition table.
///
/// Create one with [`SllCache::new`] (or take it from a
/// [`Parser`](crate::Parser)); it may be reused across any number of
/// inputs *for the same grammar*. Capacity caps (see the module docs) are
/// configured with [`SllCache::set_capacity`] and survive
/// [`SllCache::clear`].
///
/// The cache is `Clone`: cloning snapshots the full memo (states,
/// transitions, caps, counters). Batch parsing uses this for its
/// warm-cache mode — one warmup parse populates a cache, and each worker
/// starts from an identical private copy (interned configuration sets are
/// `Arc`-shared, so the copy is cheap relative to re-deriving the DFA).
#[derive(Debug, Default, Clone)]
pub struct SllCache {
    states: HashMap<u32, StateData>,
    intern: HashMap<Arc<[Config]>, StateId>,
    starts: HashMap<NonTerminal, StateId>,
    transitions: HashMap<(StateId, Terminal), StateId>,
    next_id: u32,
    tick: u64,
    bytes: usize,
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
    /// Entry cap 0 means "cache off": nothing is memoized, every lookup
    /// is a miss, and interned states are transient scratch values that
    /// live only while an in-flight prediction holds their ids.
    disabled: bool,
    hits: u64,
    misses: u64,
    evictions: u64,
    poison_drops: u64,
    prediction_stats: PredictionStats,
    #[cfg(feature = "faults")]
    fault_plan: Option<FaultPlan>,
    #[cfg(feature = "faults")]
    intern_seq: u64,
}

impl SllCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache capped at `max_entries` interned states.
    pub fn bounded(max_entries: usize) -> Self {
        let mut cache = Self::new();
        cache.set_capacity(Some(max_entries), None);
        cache
    }

    /// Pre-sizes the state, intern, and transition tables for roughly `n`
    /// interned states, avoiding rehash churn while the DFA warms up. The
    /// audit certificate's per-decision graph-state totals
    /// (`AuditTable::total_graph_states`) give a static upper estimate of
    /// the SLL DFA this cache will intern, so
    /// [`Parser::with_analysis`](crate::Parser::with_analysis) seeds the
    /// reservation from it. Purely a capacity hint: no states are created
    /// and caps are unaffected.
    pub fn reserve_states(&mut self, n: usize) {
        self.states.reserve(n);
        self.intern.reserve(n);
        // DFA states average more than one outgoing edge; 2n is a cheap
        // middle ground between no hint and per-terminal fanout.
        self.transitions.reserve(n.saturating_mul(2));
    }

    /// Configures (or removes, with `None`) the entry and byte caps, and
    /// immediately enforces them. No prediction is in flight between
    /// parses, so nothing needs protection here.
    ///
    /// An entry cap of 0 disables the cache entirely rather than thrashing
    /// it: every lookup is a miss, nothing is memoized, and no evictions
    /// are counted — prediction degrades to uncached SLL simulation.
    pub fn set_capacity(&mut self, max_entries: Option<usize>, max_bytes: Option<usize>) {
        self.max_entries = max_entries;
        self.max_bytes = max_bytes;
        let was_disabled = self.disabled;
        self.disabled = max_entries == Some(0);
        if was_disabled && !self.disabled {
            // Leftover scratch states are not in the memo maps; drop them
            // rather than letting them shadow future interning.
            self.states.clear();
        }
        if self.disabled {
            // Dropping the memo wholesale is not eviction churn: nothing
            // will ever be served from the cache again, so the evictions
            // counter stays untouched.
            self.states.clear();
            self.intern.clear();
            self.starts.clear();
            self.transitions.clear();
            self.bytes = 0;
        } else {
            self.enforce_caps(&[]);
        }
    }

    /// Discards all cached states and transitions (e.g. when switching
    /// grammars; a cache must never be shared between grammars). Capacity
    /// caps and any installed fault plan are retained.
    pub fn clear(&mut self) {
        self.states.clear();
        self.intern.clear();
        self.starts.clear();
        self.transitions.clear();
        self.bytes = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.poison_drops = 0;
        self.prediction_stats = PredictionStats::default();
    }

    /// Prediction-behavior counters accumulated since the last
    /// [`SllCache::clear`] (or construction).
    pub fn prediction_stats(&self) -> PredictionStats {
        self.prediction_stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut PredictionStats {
        &mut self.prediction_stats
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            poison_drops: self.poison_drops,
            approx_bytes: self.bytes,
        }
    }

    // Audited: every StateId handed out by `intern` is pinned against
    // eviction while the caller's simulation round holds it (see
    // `enforce_caps`' live-set exclusion), so the lookup cannot miss.
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn state(&self, id: StateId) -> &StateData {
        self.states
            .get(&id.0)
            .expect("live StateIds are protected from eviction")
    }

    fn touch(&mut self, id: StateId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(data) = self.states.get_mut(&id.0) {
            data.last_used = tick;
        }
    }

    /// Interns a configuration set (sorting it into canonical order),
    /// computes its resolution, and enforces the capacity caps. States in
    /// `protect` — the ids an in-flight prediction still holds — are
    /// exempt from eviction, as is the state being interned.
    pub(crate) fn intern_protected(
        &mut self,
        mut configs: Vec<Config>,
        protect: &[StateId],
    ) -> StateId {
        configs.sort_unstable();
        configs.dedup();
        let key: Arc<[Config]> = configs.into();
        if self.disabled {
            return self.scratch_state(key, protect);
        }
        if let Some(&id) = self.intern.get(&key) {
            self.touch(id);
            return id;
        }
        let resolution = classify(&key);
        let id = StateId(self.next_id);
        self.next_id += 1;
        self.tick += 1;
        // Approximate: the config array plus per-entry map overhead. The
        // persistent SimStack tails inside configs are shared and not
        // attributed.
        let bytes = mem::size_of::<StateData>()
            + key.len() * mem::size_of::<Config>()
            + mem::size_of::<(Arc<[Config]>, StateId)>();
        self.bytes += bytes;
        self.states.insert(
            id.0,
            StateData {
                configs: Arc::clone(&key),
                resolution,
                eof: None,
                last_used: self.tick,
                bytes,
                poisoned: false,
            },
        );
        self.intern.insert(key, id);
        self.apply_fault_hooks(id, protect);
        let mut guarded = protect.to_vec();
        guarded.push(id);
        self.enforce_caps(&guarded);
        id
    }

    /// Interning without an in-flight prediction to protect (the newly
    /// interned state itself is always protected).
    #[cfg(test)]
    pub(crate) fn intern(&mut self, configs: Vec<Config>) -> StateId {
        self.intern_protected(configs, &[])
    }

    /// Disabled-mode interning: mints a transient state resolvable through
    /// [`SllCache::state`] while the in-flight prediction holds its id, and
    /// drops every unprotected scratch state so memory stays bounded at a
    /// couple of entries. Nothing enters the memo maps, the byte ledger,
    /// or the eviction counter.
    fn scratch_state(&mut self, key: Arc<[Config]>, protect: &[StateId]) -> StateId {
        self.states
            .retain(|id, _| protect.iter().any(|p| p.0 == *id));
        let resolution = classify(&key);
        let id = StateId(self.next_id);
        self.next_id += 1;
        self.tick += 1;
        self.states.insert(
            id.0,
            StateData {
                configs: key,
                resolution,
                eof: None,
                last_used: self.tick,
                bytes: 0,
                poisoned: false,
            },
        );
        id
    }

    /// Lifetime total of capacity-driven evictions (monotonic, unlike the
    /// snapshot in [`CacheStats`]); sampled around interns to report
    /// eviction bursts to observers.
    pub(crate) fn evictions_total(&self) -> u64 {
        self.evictions
    }

    #[cfg(feature = "faults")]
    fn apply_fault_hooks(&mut self, id: StateId, protect: &[StateId]) {
        let Some(plan) = self.fault_plan else { return };
        self.intern_seq += 1;
        let seq = self.intern_seq;
        let due = |every: Option<u64>| every.is_some_and(|n| n > 0 && seq.is_multiple_of(n));
        if due(plan.poison_every) {
            if let Some(data) = self.states.get_mut(&id.0) {
                data.poisoned = true;
            }
        }
        if due(plan.evict_every) {
            let mut guarded = protect.to_vec();
            guarded.push(id);
            if let Some(victim) = self.lru_victim(&guarded) {
                self.evict(victim);
            }
        }
    }

    #[cfg(not(feature = "faults"))]
    fn apply_fault_hooks(&mut self, _id: StateId, _protect: &[StateId]) {}

    /// Installs a deterministic fault-injection plan (see
    /// [`crate::faults::FaultPlan`]). Survives [`SllCache::clear`].
    #[cfg(feature = "faults")]
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// `true` when the installed fault plan calls for a panic at machine
    /// step `step`. Fires at-or-past the scheduled step: fuel indices are
    /// shared with prediction lookahead, so a machine step with exactly
    /// the scheduled index may never occur.
    #[cfg(feature = "faults")]
    pub(crate) fn fault_panic_due(&self, step: u64) -> bool {
        self.fault_plan
            .and_then(|p| p.panic_at_step)
            .is_some_and(|at| step >= at)
    }

    fn over_caps(&self) -> bool {
        self.max_entries.is_some_and(|m| self.states.len() > m)
            || self.max_bytes.is_some_and(|m| self.bytes > m)
    }

    fn lru_victim(&self, protect: &[StateId]) -> Option<u32> {
        self.states
            .iter()
            .filter(|(id, _)| !protect.iter().any(|p| p.0 == **id))
            .min_by_key(|(_, data)| data.last_used)
            .map(|(id, _)| *id)
    }

    /// Evicts least-recently-used states until the caps are respected,
    /// never evicting a protected (in-flight) state.
    fn enforce_caps(&mut self, protect: &[StateId]) {
        while self.over_caps() {
            let Some(victim) = self.lru_victim(protect) else {
                break; // everything left is protected
            };
            self.evict(victim);
        }
    }

    /// Removes a state and every start pointer and transition that
    /// mentions it, keeping the DFA internally consistent.
    fn evict(&mut self, victim: u32) {
        let Some(data) = self.states.remove(&victim) else {
            return;
        };
        self.intern.remove(&data.configs);
        self.starts.retain(|_, id| id.0 != victim);
        self.transitions
            .retain(|(from, _), to| from.0 != victim && to.0 != victim);
        self.bytes = self.bytes.saturating_sub(data.bytes);
        self.evictions += 1;
    }

    /// Drops a poisoned entry discovered at lookup time: the entry is
    /// evicted (so it can never be served) and the lookup proceeds as a
    /// miss, which re-derives the correct analysis.
    fn drop_poisoned(&mut self, id: StateId) {
        self.evict(id.0);
        self.evictions -= 1; // counted as a poison drop, not an eviction
        self.poison_drops += 1;
    }

    /// The cached start state for decision nonterminal `x`, if present
    /// and healthy. Poisoned entries are dropped and reported as misses.
    pub(crate) fn start_state(&mut self, x: NonTerminal) -> Option<StateId> {
        let id = self.starts.get(&x).copied()?;
        if self.state(id).poisoned {
            self.drop_poisoned(id);
            return None;
        }
        self.touch(id);
        Some(id)
    }

    /// Records the start state for `x` (a no-op when the cache is
    /// disabled: scratch states must not be memoized).
    pub(crate) fn set_start_state(&mut self, x: NonTerminal, id: StateId) {
        if self.disabled {
            return;
        }
        self.starts.insert(x, id);
    }

    /// Looks up a cached transition, bumping hit/miss counters. A
    /// poisoned target is dropped and reported as a miss — unless it is
    /// the source state itself (a poisoned self-loop), which stays
    /// resident until reached from elsewhere because the caller still
    /// holds its id.
    pub(crate) fn transition(&mut self, from: StateId, t: Terminal) -> Option<StateId> {
        match self.transitions.get(&(from, t)).copied() {
            Some(to) => {
                if to != from && self.state(to).poisoned {
                    self.drop_poisoned(to);
                    self.misses += 1;
                    return None;
                }
                self.hits += 1;
                self.touch(to);
                Some(to)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a transition (a no-op when the cache is disabled).
    pub(crate) fn set_transition(&mut self, from: StateId, t: Terminal, to: StateId) {
        if self.disabled {
            return;
        }
        self.transitions.insert((from, t), to);
    }

    /// The end-of-input resolution of a state, computed on first use and
    /// cached thereafter.
    pub(crate) fn eof_resolution(&mut self, id: StateId) -> EofResolution {
        let data = self.state(id);
        if let Some(r) = data.eof {
            return r;
        }
        let eof_alts: Vec<ProdId> = {
            let mut alts: Vec<ProdId> = data
                .configs
                .iter()
                .filter(|c| matches!(c.state, SpState::AcceptEof))
                .map(|c| c.alt)
                .collect();
            alts.sort_unstable();
            alts.dedup();
            alts
        };
        let r = match eof_alts.as_slice() {
            [] => EofResolution::Reject,
            [only] => EofResolution::Unique(*only),
            [first, ..] => EofResolution::Conflict(*first),
        };
        if let Some(data) = self.states.get_mut(&id.0) {
            data.eof = Some(r);
        }
        r
    }
}

/// The resolution a canonical config set implies without more input.
fn classify(key: &[Config]) -> Resolution {
    let alts = distinct_alts(key);
    match alts.as_slice() {
        [] => Resolution::Reject,
        [only] => Resolution::Unique(*only),
        _ => Resolution::Pending,
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::prediction::sim::SimStack;

    fn cfg(alt: u32, state: SpState) -> Config {
        // ProdId is crate-private to costar-grammar; go through index 0..n
        // of a real grammar to mint ids.
        let g = {
            let mut gb = costar_grammar::GrammarBuilder::new();
            gb.rule("S", &["a"]);
            gb.rule("S", &["b"]);
            gb.rule("S", &["c"]);
            gb.start("S").build().unwrap()
        };
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        Config {
            alt: g.alternatives(s)[alt as usize],
            state,
        }
    }

    #[test]
    fn interning_is_canonical() {
        let mut cache = SllCache::new();
        let a = cfg(0, SpState::AcceptEof);
        let b = cfg(1, SpState::AcceptEof);
        let id1 = cache.intern(vec![a.clone(), b.clone()]);
        let id2 = cache.intern(vec![b, a]);
        assert_eq!(id1, id2);
        assert_eq!(cache.stats().states, 1);
    }

    #[test]
    fn resolution_classification() {
        let mut cache = SllCache::new();
        let empty = cache.intern(vec![]);
        assert_eq!(cache.state(empty).resolution, Resolution::Reject);
        let unique = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        assert!(matches!(
            cache.state(unique).resolution,
            Resolution::Unique(_)
        ));
        let pending = cache.intern(vec![cfg(0, SpState::AcceptEof), cfg(1, SpState::AcceptEof)]);
        assert_eq!(cache.state(pending).resolution, Resolution::Pending);
    }

    #[test]
    fn eof_resolution_variants() {
        let mut cache = SllCache::new();
        // Both alternatives accept EOF: conflict, resolved to the first.
        let conflict = cache.intern(vec![cfg(0, SpState::AcceptEof), cfg(1, SpState::AcceptEof)]);
        assert!(matches!(
            cache.eof_resolution(conflict),
            EofResolution::Conflict(_)
        ));
        // A pending state whose configs need more input rejects at EOF.
        let g = {
            let mut gb = costar_grammar::GrammarBuilder::new();
            gb.rule("S", &["a"]);
            gb.rule("S", &["b"]);
            gb.start("S").build().unwrap()
        };
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let stack = SimStack::empty().push(crate::prediction::sim::SimFrame {
            lhs: Some(s),
            rhs: g.rhs_arc(g.alternatives(s)[0]),
            dot: 0,
        });
        let not_eof = cache.intern(vec![
            Config {
                alt: g.alternatives(s)[0],
                state: SpState::Stack(stack.clone()),
            },
            Config {
                alt: g.alternatives(s)[1],
                state: SpState::Stack(stack),
            },
        ]);
        assert_eq!(cache.eof_resolution(not_eof), EofResolution::Reject);
        // Cached on second call.
        assert_eq!(cache.eof_resolution(not_eof), EofResolution::Reject);
    }

    #[test]
    fn transition_hit_miss_accounting() {
        let mut cache = SllCache::new();
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        let s1 = cache.intern(vec![cfg(1, SpState::AcceptEof)]);
        let t = Terminal::from_index(0);
        assert_eq!(cache.transition(s0, t), None);
        cache.set_transition(s0, t, s1);
        assert_eq!(cache.transition(s0, t), Some(s1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.transitions, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut cache = SllCache::new();
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        cache.set_start_state(NonTerminal::from_index(0), s0);
        cache.set_transition(s0, Terminal::from_index(0), s0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.states, 0);
        assert_eq!(stats.transitions, 0);
        assert_eq!(stats.approx_bytes, 0);
        assert!(cache.start_state(NonTerminal::from_index(0)).is_none());
    }

    #[test]
    fn entry_cap_evicts_lru_and_cleans_edges() {
        let mut cache = SllCache::new();
        cache.set_capacity(Some(2), None);
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        let s1 = cache.intern(vec![cfg(1, SpState::AcceptEof)]);
        cache.set_start_state(NonTerminal::from_index(0), s0);
        cache.set_transition(s0, Terminal::from_index(0), s1);
        // Touch s0 so s1 is the LRU entry, then overflow the cap.
        cache.start_state(NonTerminal::from_index(0));
        let s2 = cache.intern(vec![cfg(2, SpState::AcceptEof)]);
        let stats = cache.stats();
        assert_eq!(stats.states, 2);
        assert_eq!(stats.evictions, 1);
        // s1 was evicted: its transition edge must be gone too.
        assert_eq!(stats.transitions, 0);
        assert!(cache.states.contains_key(&s0.0));
        assert!(!cache.states.contains_key(&s1.0));
        assert!(cache.states.contains_key(&s2.0));
        // Re-interning the evicted configs mints a fresh id (no ABA).
        let s1_again = cache.intern(vec![cfg(1, SpState::AcceptEof)]);
        assert_ne!(s1_again, s1);
    }

    #[test]
    fn protected_states_survive_cap_pressure() {
        let mut cache = SllCache::new();
        cache.set_capacity(Some(1), None);
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        let s1 = cache.intern_protected(vec![cfg(1, SpState::AcceptEof)], &[s0]);
        // Cap is 1 but both states are protected: enforcement backs off
        // rather than evicting an in-flight state.
        assert!(cache.states.contains_key(&s0.0));
        assert!(cache.states.contains_key(&s1.0));
        // With protection released, the next intern shrinks to the cap.
        let _s2 = cache.intern(vec![cfg(2, SpState::AcceptEof)]);
        assert_eq!(cache.stats().states, 1);
    }

    #[test]
    fn byte_cap_is_enforced() {
        let mut cache = SllCache::new();
        cache.set_capacity(None, Some(1)); // absurdly small: at most one state survives
        let _ = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        let _ = cache.intern(vec![cfg(1, SpState::AcceptEof)]);
        // Each intern evicts everything unprotected; at most the newest
        // (protected during its own intern) remains resident.
        assert!(cache.stats().states <= 1);
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn zero_entry_cap_disables_the_cache() {
        let mut cache = SllCache::new();
        // Warm the cache, then turn it off: the memo must vanish without
        // being booked as evictions.
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        cache.set_start_state(NonTerminal::from_index(0), s0);
        cache.set_transition(s0, Terminal::from_index(0), s0);
        cache.set_capacity(Some(0), None);
        assert_eq!(cache.stats().states, 0);
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.start_state(NonTerminal::from_index(0)).is_none());

        // Scratch states resolve while protected, nothing is memoized,
        // and every transition lookup is a miss.
        let a = cache.intern_protected(vec![cfg(0, SpState::AcceptEof)], &[]);
        assert!(matches!(cache.state(a).resolution, Resolution::Unique(_)));
        cache.set_start_state(NonTerminal::from_index(0), a);
        assert!(cache.start_state(NonTerminal::from_index(0)).is_none());
        let t = Terminal::from_index(0);
        assert_eq!(cache.transition(a, t), None);
        let b = cache.intern_protected(vec![cfg(1, SpState::AcceptEof)], &[a]);
        cache.set_transition(a, t, b);
        assert_eq!(cache.transition(a, t), None);
        // Memory stays bounded: unprotected scratch states are dropped.
        let _c = cache.intern_protected(vec![cfg(2, SpState::AcceptEof)], &[b]);
        assert!(cache.states.len() <= 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.transitions, 0);
        assert_eq!(stats.approx_bytes, 0);
    }

    #[test]
    fn raising_a_zero_cap_reenables_the_cache() {
        let mut cache = SllCache::new();
        cache.set_capacity(Some(0), None);
        let _ = cache.intern_protected(vec![cfg(0, SpState::AcceptEof)], &[]);
        cache.set_capacity(Some(8), None);
        let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        let s1 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        assert_eq!(s0, s1, "memoization must resume once the cap is lifted");
    }

    #[test]
    fn bounded_constructor_caps_entries() {
        let mut cache = SllCache::bounded(1);
        let _ = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
        let _ = cache.intern(vec![cfg(1, SpState::AcceptEof)]);
        assert_eq!(cache.stats().states, 1);
    }

    #[cfg(feature = "faults")]
    mod fault_tests {
        use super::*;
        use crate::faults::FaultPlan;

        #[test]
        fn poisoned_start_state_is_dropped_not_served() {
            let mut cache = SllCache::new();
            cache.install_fault_plan(FaultPlan::none().poison_every(1));
            let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
            cache.set_start_state(NonTerminal::from_index(0), s0);
            assert!(cache.start_state(NonTerminal::from_index(0)).is_none());
            assert_eq!(cache.stats().poison_drops, 1);
            assert_eq!(cache.stats().states, 0);
        }

        #[test]
        fn poisoned_transition_target_reported_as_miss() {
            let mut cache = SllCache::new();
            cache.install_fault_plan(FaultPlan::none().poison_every(2));
            let s0 = cache.intern(vec![cfg(0, SpState::AcceptEof)]); // healthy
            let s1 = cache.intern(vec![cfg(1, SpState::AcceptEof)]); // poisoned
            let t = Terminal::from_index(0);
            cache.set_transition(s0, t, s1);
            assert_eq!(cache.transition(s0, t), None);
            let stats = cache.stats();
            assert_eq!(stats.poison_drops, 1);
            assert_eq!(stats.misses, 1);
            assert_eq!(stats.hits, 0);
        }

        #[test]
        fn eviction_storm_forces_constant_turnover() {
            let mut cache = SllCache::new();
            cache.install_fault_plan(FaultPlan::none().evict_every(1));
            let _ = cache.intern(vec![cfg(0, SpState::AcceptEof)]);
            let _ = cache.intern(vec![cfg(1, SpState::AcceptEof)]);
            let _ = cache.intern(vec![cfg(2, SpState::AcceptEof)]);
            // Every intern evicts the previous LRU entry (the new state is
            // protected), so only one state is ever resident.
            assert_eq!(cache.stats().states, 1);
            assert_eq!(cache.stats().evictions, 2);
        }
    }
}
