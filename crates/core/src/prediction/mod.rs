//! The `adaptivePredict` mechanism (paper §3.4).
//!
//! ALL(*)'s distinguishing feature: at each decision point (a nonterminal
//! at the top of the suffix stack), prediction launches one subparser per
//! alternative and advances them in lockstep over the remaining input
//! until a single alternative survives, none does, or ambiguity is
//! detected at end of input.
//!
//! Two strategies cooperate:
//!
//! * **SLL** ([`sll_predict`]) is fast and imprecise: subparsers carry
//!   only the stack frames created during the simulation, returning
//!   through statically computed stable frames when their local stack
//!   empties, and every analysis step is cached in a DFA
//!   ([`SllCache`](crate::SllCache)).
//! * **LL** ([`ll_predict`]) is slow and precise: subparsers carry the
//!   machine's actual suffix stack, so a completed decision nonterminal
//!   returns to its true context.
//!
//! SLL overapproximates LL: every LL-viable alternative is SLL-viable.
//! `adaptivePredict` therefore commits to an SLL `Unique` result (LL would
//! have agreed — paper Lemma 5.4), propagates an SLL `Reject` (LL could
//! not have found more alternatives), and *fails over to LL* when SLL
//! reports ambiguity, because the extra SLL alternatives might be
//! artifacts of the lost context.

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
pub(crate) mod cache;
pub(crate) mod sim;

use crate::budget::{AbortReason, Meter};
use crate::error::ParseError;
use crate::observe::{ParseObserver, PredictOutcome, PredictPhase};
use crate::prediction::cache::{EofResolution, Resolution, SllCache, StateId};
use crate::prediction::sim::{
    closure, distinct_alts, move_configs, Config, SimFrame, SimMode, SimStack, SpState,
};
use crate::state::SuffixFrame;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, NonTerminal, ProdId, Token};
use std::sync::Arc;

/// The result of a prediction (`p` in paper Fig. 1, extended with the
/// budget-abort outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Prediction {
    /// `UniqueP(γ)`: the sole alternative that may lead to a successful
    /// parse.
    Unique(ProdId),
    /// `AmbigP(γ)`: this alternative succeeds, and so does at least one
    /// other — the input is ambiguous.
    Ambig(ProdId),
    /// `RejectP`: no alternative can succeed.
    Reject,
    /// `ErrorP(e)`: prediction reached an inconsistent state or detected
    /// left recursion.
    Error(ParseError),
    /// The resource budget ran out mid-prediction; the decision is
    /// unresolved and the machine must abort.
    Abort(AbortReason),
}

impl Prediction {
    /// The observer-facing classification of this prediction result.
    fn outcome(&self) -> PredictOutcome {
        match self {
            Prediction::Unique(_) => PredictOutcome::Unique,
            Prediction::Ambig(_) => PredictOutcome::Ambig,
            Prediction::Reject => PredictOutcome::Reject,
            Prediction::Error(_) => PredictOutcome::Error,
            Prediction::Abort(_) => PredictOutcome::Abort,
        }
    }
}

/// Builds the LL simulation base stack from the machine's suffix stack:
/// the machine frames, with the top frame's dot advanced past the decision
/// nonterminal (mirroring what the machine's own push operation does).
fn machine_base_stack(suffix: &[SuffixFrame]) -> SimStack {
    let mut stack = SimStack::empty();
    for (i, frame) in suffix.iter().enumerate() {
        let is_top = i + 1 == suffix.len();
        stack = stack.push(SimFrame {
            lhs: frame.caller,
            rhs: Arc::clone(&frame.rhs),
            dot: if is_top { frame.dot + 1 } else { frame.dot },
        });
    }
    stack
}

/// Initial subparser configurations for decision nonterminal `x`: one per
/// alternative, each with the alternative's frame pushed on `base`.
fn initial_configs(g: &Grammar, x: NonTerminal, base: &SimStack) -> Vec<Config> {
    g.alternatives(x)
        .iter()
        .map(|&q| Config {
            alt: q,
            state: SpState::Stack(base.push(SimFrame {
                lhs: Some(x),
                rhs: g.rhs_arc(q),
                dot: 0,
            })),
        })
        .collect()
}

/// LL prediction: precise, uncached lockstep simulation over the machine's
/// real suffix stack. Charges one unit of fuel per lookahead token
/// examined.
pub(crate) fn ll_predict<O: ParseObserver>(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    x: NonTerminal,
    suffix: &[SuffixFrame],
    remaining: &[Token],
    meter: &mut Meter,
    obs: &mut O,
) -> Prediction {
    obs.on_predict_start(x, PredictPhase::Ll);
    let p = ll_predict_inner(g, analysis, x, suffix, remaining, meter, obs);
    obs.on_predict_end(x, PredictPhase::Ll, p.outcome());
    p
}

fn ll_predict_inner<O: ParseObserver>(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    x: NonTerminal,
    suffix: &[SuffixFrame],
    remaining: &[Token],
    meter: &mut Meter,
    obs: &mut O,
) -> Prediction {
    let base = machine_base_stack(suffix);
    let num_nts = g.num_nonterminals();
    let mut configs = match closure(
        g,
        analysis,
        SimMode::Ll,
        initial_configs(g, x, &base),
        num_nts,
        obs,
    ) {
        Ok(c) => c,
        Err(e) => return Prediction::Error(e),
    };
    let mut input = remaining.iter();
    loop {
        let alts = distinct_alts(&configs);
        match alts.as_slice() {
            [] => return Prediction::Reject,
            [only] => return Prediction::Unique(*only),
            _ => {}
        }
        if let Err(r) = meter.charge(1) {
            obs.on_abort(&r);
            return Prediction::Abort(r);
        }
        obs.on_lookahead(PredictPhase::Ll);
        let Some(t) = input.next() else {
            // End of input with several alternatives still alive: the
            // survivors that accept EOF each derive the whole remaining
            // word — ambiguity (paper §3.5: CoStar reports ambiguity only
            // when subparsers for different alternatives reach the end of
            // the input).
            let mut eof_alts: Vec<ProdId> = configs
                .iter()
                .filter(|c| matches!(c.state, SpState::AcceptEof))
                .map(|c| c.alt)
                .collect();
            eof_alts.sort_unstable();
            eof_alts.dedup();
            return match eof_alts.as_slice() {
                [] => Prediction::Reject,
                [only] => Prediction::Unique(*only),
                [first, ..] => Prediction::Ambig(*first),
            };
        };
        let moved = match move_configs(&configs, t.terminal()) {
            Ok(m) => m,
            Err(e) => return Prediction::Error(e),
        };
        configs = match closure(g, analysis, SimMode::Ll, moved, num_nts, obs) {
            Ok(c) => c,
            Err(e) => return Prediction::Error(e),
        };
    }
}

/// SLL prediction: context-insensitive lockstep simulation with every step
/// cached as a DFA transition in `cache`. Charges one unit of fuel per
/// lookahead token examined.
///
/// An `Ambig` result here means "SLL conflict": several alternatives
/// survived to end of input *under the overapproximated context*, so the
/// caller must fail over to LL prediction.
///
/// The in-flight state id is passed to the cache as a protection set on
/// every intern, so capacity-driven eviction can never invalidate the
/// state this simulation is standing on.
pub(crate) fn sll_predict<O: ParseObserver>(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    x: NonTerminal,
    remaining: &[Token],
    cache: &mut SllCache,
    meter: &mut Meter,
    obs: &mut O,
) -> Prediction {
    obs.on_predict_start(x, PredictPhase::Sll);
    let p = sll_predict_inner(g, analysis, x, remaining, cache, meter, obs);
    obs.on_predict_end(x, PredictPhase::Sll, p.outcome());
    p
}

/// Interns `configs`, reporting any capacity-driven evictions that the
/// intern provoked to the observer.
fn intern_observed<O: ParseObserver>(
    cache: &mut SllCache,
    configs: Vec<Config>,
    protect: &[StateId],
    obs: &mut O,
) -> StateId {
    let before = cache.evictions_total();
    let id = cache.intern_protected(configs, protect);
    let evicted = cache.evictions_total() - before;
    if evicted > 0 {
        obs.on_cache_evictions(evicted);
    }
    id
}

fn sll_predict_inner<O: ParseObserver>(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    x: NonTerminal,
    remaining: &[Token],
    cache: &mut SllCache,
    meter: &mut Meter,
    obs: &mut O,
) -> Prediction {
    let num_nts = g.num_nonterminals();
    let mut sid: StateId = match cache.start_state(x) {
        Some(id) => id,
        None => {
            let configs = match closure(
                g,
                analysis,
                SimMode::Sll,
                initial_configs(g, x, &SimStack::empty()),
                num_nts,
                obs,
            ) {
                Ok(c) => c,
                Err(e) => return Prediction::Error(e),
            };
            let id = intern_observed(cache, configs, &[], obs);
            cache.set_start_state(x, id);
            id
        }
    };

    let mut input = remaining.iter();
    let mut lookahead = 0usize;
    loop {
        match cache.state(sid).resolution {
            Resolution::Unique(alt) => {
                record_lookahead(cache, lookahead);
                check_certificate(analysis, x, lookahead, obs);
                return Prediction::Unique(alt);
            }
            Resolution::Reject => {
                record_lookahead(cache, lookahead);
                check_certificate(analysis, x, lookahead, obs);
                return Prediction::Reject;
            }
            Resolution::Pending => {}
        }
        if let Err(r) = meter.charge(1) {
            record_lookahead(cache, lookahead);
            obs.on_abort(&r);
            return Prediction::Abort(r);
        }
        obs.on_lookahead(PredictPhase::Sll);
        let Some(t) = input.next() else {
            record_lookahead(cache, lookahead);
            return match cache.eof_resolution(sid) {
                EofResolution::Unique(alt) => {
                    check_certificate(analysis, x, lookahead, obs);
                    Prediction::Unique(alt)
                }
                EofResolution::Reject => {
                    check_certificate(analysis, x, lookahead, obs);
                    Prediction::Reject
                }
                EofResolution::Conflict(alt) => Prediction::Ambig(alt),
            };
        };
        lookahead += 1;
        let term = t.terminal();
        obs.on_cache_lookup();
        sid = match cache.transition(sid, term) {
            Some(next) => {
                obs.on_cache_hit();
                next
            }
            None => {
                obs.on_cache_miss();
                let moved = match move_configs(&cache.state(sid).configs, term) {
                    Ok(m) => m,
                    Err(e) => return Prediction::Error(e),
                };
                let next_configs = match closure(g, analysis, SimMode::Sll, moved, num_nts, obs) {
                    Ok(c) => c,
                    Err(e) => return Prediction::Error(e),
                };
                let next = intern_observed(cache, next_configs, &[sid], obs);
                cache.set_transition(sid, term, next);
                next
            }
        };
    }
}

/// LL-only prediction: the precise simulation at every decision, with no
/// SLL phase and no cache. Semantically equivalent to
/// [`adaptive_predict`]; exists for the cache ablation experiments.
pub(crate) fn ll_only_predict<O: ParseObserver>(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    x: NonTerminal,
    suffix: &[SuffixFrame],
    remaining: &[Token],
    meter: &mut Meter,
    obs: &mut O,
) -> Prediction {
    match g.alternatives(x) {
        [] => return Prediction::Reject,
        [only] => return Prediction::Unique(*only),
        _ => {}
    }
    ll_predict(g, analysis, x, suffix, remaining, meter, obs)
}

/// Folds one decision's lookahead depth into the cache's running
/// prediction statistics.
fn record_lookahead(cache: &mut SllCache, lookahead: usize) {
    let stats = cache.stats_mut();
    stats.lookahead_tokens += lookahead as u64;
    stats.max_lookahead = stats.max_lookahead.max(lookahead);
}

/// Validates a committed SLL resolution against the audit certificate's
/// finite lookahead bound, if decision `x` carries one. Static replay
/// (`costar_grammar::analysis::replay_certificate`) refutes *inflated*
/// bounds via their collide witnesses, but a *deflated* bound — claiming
/// fewer tokens suffice than actually do — is a universal statement no
/// single witness can refute, so it is checked here, on the live decision:
/// a correct certificate guarantees every committed SLL resolution uses at
/// most `k` lookahead tokens. Unbounded decisions (`k_bound` `None`) and
/// conflicts (which fail over to LL) carry no claim and are skipped.
fn check_certificate<O: ParseObserver>(
    analysis: &GrammarAnalysis,
    x: NonTerminal,
    lookahead: usize,
    obs: &mut O,
) {
    if let Some(k) = analysis.audit.k_bound(x) {
        obs.on_certificate_check(x, lookahead <= k);
    }
}

/// `adaptivePredict` (paper §3.4): try SLL, commit to its unique and
/// reject answers, and fail over to LL when SLL detects a conflict.
///
/// A decision nonterminal with a single alternative short-circuits to
/// `Unique` without simulation — there is nothing to decide, and with no
/// competing alternative the `Unique` label is trivially correct.
///
/// When `use_static` is set and the static decision table classified `x`
/// as LL(1), the decision dispatches through the precompiled lookahead
/// map instead: no subparser simulation, no cache traffic, no fuel. This
/// is sound for non-left-recursive grammars — any alternative surviving
/// full prediction on lookahead `t` is selected by `t`, select sets are
/// disjoint, and an ambiguity verdict would force a select-set overlap —
/// so the fast path returns exactly what full prediction would (a map
/// miss coincides with full prediction's `Reject`). The verify crate's
/// `H-DECIDE-SOUND` harness checks the agreement dynamically.
#[allow(clippy::too_many_arguments)] // the paper's full decision context, plus the observer
pub(crate) fn adaptive_predict<O: ParseObserver>(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    x: NonTerminal,
    suffix: &[SuffixFrame],
    remaining: &[Token],
    cache: &mut SllCache,
    meter: &mut Meter,
    obs: &mut O,
    use_static: bool,
) -> Prediction {
    match g.alternatives(x) {
        [] => return Prediction::Reject,
        [only] => {
            cache.stats_mut().single_alternative += 1;
            obs.on_single_alt(x);
            return Prediction::Unique(*only);
        }
        _ => {}
    }
    cache.stats_mut().predictions += 1;
    obs.on_decision(x);
    if use_static {
        if let Some(map) = analysis.decisions.ll1_map(x) {
            cache.stats_mut().static_fast_path += 1;
            obs.on_static_fast_path(x);
            let chosen = match remaining.first() {
                Some(t) => map.for_terminal(t.terminal()),
                None => map.for_eof(),
            };
            return match chosen {
                Some(alt) => Prediction::Unique(alt),
                // No alternative's select set contains the lookahead: full
                // prediction's first move (or EOF resolution) would kill
                // every subparser and reject too.
                None => Prediction::Reject,
            };
        }
    }
    match sll_predict(g, analysis, x, remaining, cache, meter, obs) {
        Prediction::Ambig(_) => {
            cache.stats_mut().failovers += 1;
            obs.on_failover(x);
            ll_predict(g, analysis, x, suffix, remaining, meter, obs)
        }
        Prediction::Abort(r) => Prediction::Abort(r),
        committed => {
            cache.stats_mut().sll_resolved += 1;
            obs.on_sll_resolved(x);
            committed
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;
    use costar_grammar::{tokens, GrammarBuilder};

    fn fig2() -> (Grammar, GrammarAnalysis) {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        (g, an)
    }

    fn start_suffix(g: &Grammar) -> Vec<SuffixFrame> {
        vec![SuffixFrame {
            caller: None,
            rhs: Arc::from([costar_grammar::Symbol::Nt(g.start())]),
            dot: 0,
        }]
    }

    fn nt(g: &Grammar, name: &str) -> NonTerminal {
        g.symbols().lookup_nonterminal(name).unwrap()
    }

    #[test]
    fn ll_decides_fig2_prediction() {
        // Paper Fig. 2: predicting S on "abd" must pick S -> A d, the
        // grammar's second alternative, and requires scanning to the last
        // token — the grammar is not LL(k) for k < 3 on this input family.
        let (g, an) = fig2();
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let suffix = start_suffix(&g);
        let s = nt(&g, "S");
        let p = ll_predict(
            &g,
            &an,
            s,
            &suffix,
            &word,
            &mut Meter::unlimited(),
            &mut NullObserver,
        );
        let Prediction::Unique(alt) = p else {
            panic!("expected unique prediction, got {p:?}")
        };
        assert_eq!(g.render_production(alt), "S -> A d");
    }

    #[test]
    fn sll_agrees_with_ll_on_fig2() {
        let (g, an) = fig2();
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("c", "c")]);
        let s = nt(&g, "S");
        let suffix = start_suffix(&g);
        let mut cache = SllCache::new();
        let sll = sll_predict(
            &g,
            &an,
            s,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
        );
        let ll = ll_predict(
            &g,
            &an,
            s,
            &suffix,
            &word,
            &mut Meter::unlimited(),
            &mut NullObserver,
        );
        assert_eq!(sll, ll);
        let Prediction::Unique(alt) = sll else {
            panic!("expected unique")
        };
        assert_eq!(g.render_production(alt), "S -> A c");
    }

    #[test]
    fn sll_caches_transitions_across_calls() {
        let (g, an) = fig2();
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("b", "b"), ("d", "d")]);
        let s = nt(&g, "S");
        let mut cache = SllCache::new();
        let p1 = sll_predict(
            &g,
            &an,
            s,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
        );
        let misses_after_first = cache.stats().misses;
        assert!(misses_after_first > 0);
        let p2 = sll_predict(
            &g,
            &an,
            s,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
        );
        assert_eq!(p1, p2);
        let stats = cache.stats();
        assert_eq!(
            stats.misses, misses_after_first,
            "second identical prediction must be answered from the cache"
        );
        assert!(stats.hits > 0);
    }

    #[test]
    fn prediction_rejects_unviable_input() {
        let (g, an) = fig2();
        let mut tab = g.symbols().clone();
        // "ac" cannot be derived: A never ends with a.
        let word = tokens(&mut tab, &[("a", "a"), ("c", "c")]);
        let s = nt(&g, "S");
        let suffix = start_suffix(&g);
        let mut cache = SllCache::new();
        assert_eq!(
            adaptive_predict(
                &g,
                &an,
                s,
                &suffix,
                &word,
                &mut cache,
                &mut Meter::unlimited(),
                &mut NullObserver,
                true,
            ),
            Prediction::Reject
        );
    }

    #[test]
    fn ambiguous_grammar_detected() {
        // Fig. 6 of the paper: S -> X | Y; X -> a; Y -> a.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["X"]);
        gb.rule("S", &["Y"]);
        gb.rule("X", &["a"]);
        gb.rule("Y", &["a"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("a", "a")]);
        let suffix = start_suffix(&g);
        let mut cache = SllCache::new();
        let p = adaptive_predict(
            &g,
            &an,
            nt(&g, "S"),
            &suffix,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
            true,
        );
        let Prediction::Ambig(alt) = p else {
            panic!("expected ambiguity, got {p:?}")
        };
        // CoStar picks one of the ambiguous alternatives; ours picks the
        // first in grammar order.
        assert_eq!(g.render_production(alt), "S -> X");
    }

    #[test]
    fn single_alternative_short_circuits() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "b"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let suffix = start_suffix(&g);
        let mut cache = SllCache::new();
        // Even with empty input (which cannot parse), prediction commits
        // to the sole alternative; the machine will reject at consume.
        let p = adaptive_predict(
            &g,
            &an,
            g.start(),
            &suffix,
            &[],
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
            true,
        );
        assert!(matches!(p, Prediction::Unique(_)));
        assert_eq!(cache.stats().states, 0, "no simulation should run");
    }

    #[test]
    fn lockstep_scans_past_shared_prefixes() {
        // S -> A x | B y ; A -> a ; B -> a : deciding S requires looking
        // beyond the shared prefix "a" to the distinguishing x/y.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "x"]);
        gb.rule("S", &["B", "y"]);
        gb.rule("A", &["a"]);
        gb.rule("B", &["a"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("a", "a"), ("y", "y")]);
        let suffix = start_suffix(&g);
        let mut cache = SllCache::new();
        let p = adaptive_predict(
            &g,
            &an,
            g.start(),
            &suffix,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
            true,
        );
        let Prediction::Unique(alt) = p else {
            panic!("expected unique, got {p:?}")
        };
        assert_eq!(g.render_production(alt), "S -> B y");
    }

    /// A grammar where SLL's merged contexts produce a genuine conflict
    /// that LL's precise context resolves:
    ///
    /// ```text
    /// S  -> p C1 | q C2 ;  C1 -> X b ;  C2 -> X a b ;  X -> a a | a
    /// ```
    ///
    /// Deciding X inside C2 on remaining input "a a b": under SLL, the
    /// alternative `X -> a a` survives to end of input through C1's
    /// continuation ".b" (a context that is impossible here), while
    /// `X -> a` survives through the true continuation ".a b" — an SLL
    /// conflict whose minimum alternative (`X -> a a`, listed first) is
    /// the *wrong* choice. LL failover restores the unique correct answer.
    fn sll_conflict_grammar() -> (Grammar, GrammarAnalysis) {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["p", "C1"]);
        gb.rule("S", &["q", "C2"]);
        gb.rule("C1", &["X", "b"]);
        gb.rule("C2", &["X", "a", "b"]);
        gb.rule("X", &["a", "a"]);
        gb.rule("X", &["a"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        (g, an)
    }

    #[test]
    fn sll_conflict_fails_over_to_ll() {
        let (g, an) = sll_conflict_grammar();
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("b", "b")]);
        let x = nt(&g, "X");
        // The machine context when X is decided inside C2: bottom frame
        // [S] (exhausted past S... simplified: S frame dot 1), the C2
        // frame with the dot at X.
        let s_alt2 = g.alternatives(g.start())[1];
        let c2 = nt(&g, "C2");
        let c2_alt = g.alternatives(c2)[0];
        let suffix = vec![
            SuffixFrame {
                caller: None,
                rhs: Arc::from([costar_grammar::Symbol::Nt(g.start())]),
                dot: 1,
            },
            SuffixFrame {
                caller: Some(g.start()),
                rhs: g.rhs_arc(s_alt2),
                dot: 2, // past q and C2
            },
            SuffixFrame {
                caller: Some(c2),
                rhs: g.rhs_arc(c2_alt),
                dot: 0, // at X
            },
        ];
        let mut cache = SllCache::new();
        // SLL alone conflicts and (wrongly) prefers X -> a a.
        let sll = sll_predict(
            &g,
            &an,
            x,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
        );
        let Prediction::Ambig(sll_alt) = sll else {
            panic!("expected an SLL conflict, got {sll:?}")
        };
        assert_eq!(g.render_production(sll_alt), "X -> a a");
        // LL failover picks the correct unique alternative.
        let p = adaptive_predict(
            &g,
            &an,
            x,
            &suffix,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
            true,
        );
        let Prediction::Unique(alt) = p else {
            panic!("expected LL failover to produce Unique, got {p:?}")
        };
        assert_eq!(g.render_production(alt), "X -> a");
    }

    #[derive(Default)]
    struct CertCounter {
        checks: u64,
        failures: u64,
    }
    impl ParseObserver for CertCounter {
        fn on_certificate_check(&mut self, _x: NonTerminal, ok: bool) {
            self.checks += 1;
            if !ok {
                self.failures += 1;
            }
        }
    }

    #[test]
    fn certificate_check_fires_only_for_bounded_decisions() {
        let (g, an) = fig2();
        let mut tab = g.symbols().clone();
        // A -> a A | b has certified bound k = 1: one token resolves it.
        let a_nt = nt(&g, "A");
        assert_eq!(an.audit.k_bound(a_nt), Some(1));
        let word = tokens(&mut tab, &[("b", "b"), ("d", "d")]);
        let mut cache = SllCache::new();
        let mut obs = CertCounter::default();
        let p = sll_predict(
            &g,
            &an,
            a_nt,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut obs,
        );
        assert!(matches!(p, Prediction::Unique(_)));
        assert_eq!((obs.checks, obs.failures), (1, 0));
        // S's decision is unbounded under SLL (no finite k): it carries no
        // certificate claim, so committed resolutions fire no check.
        let s = nt(&g, "S");
        assert_eq!(an.audit.k_bound(s), None);
        let word = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let mut obs = CertCounter::default();
        let p = sll_predict(
            &g,
            &an,
            s,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut obs,
        );
        assert!(matches!(p, Prediction::Unique(_)));
        assert_eq!(obs.checks, 0);
    }

    #[test]
    fn deflated_certificate_bound_fails_the_dynamic_check() {
        // Static replay cannot refute an understated bound (sufficiency is
        // universal over inputs); the runtime check is what catches it. A
        // resolution observed at lookahead 2 against certified k = 1 must
        // report a failed check.
        let (g, an) = fig2();
        let a_nt = nt(&g, "A");
        let mut obs = CertCounter::default();
        check_certificate(&an, a_nt, 2, &mut obs);
        assert_eq!((obs.checks, obs.failures), (1, 1));
        // Within the bound: counted as a validation, not a failure.
        check_certificate(&an, a_nt, 1, &mut obs);
        assert_eq!((obs.checks, obs.failures), (2, 1));
    }

    #[test]
    fn left_recursion_inside_prediction_errors() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["E", "x"]);
        gb.rule("S", &["E", "y"]);
        gb.rule("E", &["E", "p"]);
        gb.rule("E", &["i"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let mut tab = g.symbols().clone();
        let word = tokens(&mut tab, &[("i", "i"), ("x", "x")]);
        let suffix = start_suffix(&g);
        let mut cache = SllCache::new();
        let p = adaptive_predict(
            &g,
            &an,
            g.start(),
            &suffix,
            &word,
            &mut cache,
            &mut Meter::unlimited(),
            &mut NullObserver,
            true,
        );
        assert!(matches!(p, Prediction::Error(ParseError::LeftRecursive(_))));
    }
}
