//! Subparser simulation shared by LL and SLL prediction (paper §3.4).
//!
//! A subparser `θ = (γ, Ψ)` (Fig. 1) carries the right-hand side it
//! predicts (identified here by its [`ProdId`]) and a simulated suffix
//! stack. Prediction launches one subparser per alternative and advances
//! them in lockstep: a *closure* phase performs all push/return operations
//! possible without consuming input, then a *move* phase consumes one
//! token and filters the survivors.
//!
//! The simulated stacks are persistent cons lists ([`SimStack`]): pushing
//! shares the tail, so the sub-stacks that subparsers have in common are
//! stored once. The paper notes (§3.5) that CoStar forgoes ANTLR's
//! graph-structured stack; a purely functional implementation naturally
//! gets this tail sharing instead, and we reproduce exactly that.

use crate::error::ParseError;
use crate::observe::ParseObserver;
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, NonTerminal, NtSet, ProdId, Symbol, Terminal};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One frame of a simulated suffix stack.
#[derive(Debug, Clone)]
pub(crate) struct SimFrame {
    /// Left-hand side of the production this frame instantiates: the
    /// nonterminal a simulated return reduces. `None` only for the
    /// machine's bottom frame (LL mode).
    pub lhs: Option<NonTerminal>,
    /// The production right-hand side (shared with the grammar).
    pub rhs: Arc<[Symbol]>,
    /// Dot position: `rhs[dot..]` is unprocessed.
    pub dot: usize,
}

impl SimFrame {
    fn key(&self) -> (u32, usize, usize) {
        let lhs = self.lhs.map_or(u32::MAX, |x| x.index() as u32);
        (
            lhs,
            Arc::as_ptr(&self.rhs) as *const Symbol as usize,
            self.dot,
        )
    }

    /// The symbol at the dot, if any.
    pub fn head(&self) -> Option<Symbol> {
        self.rhs.get(self.dot).copied()
    }
}

impl PartialEq for SimFrame {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for SimFrame {}

#[derive(Debug)]
struct StackNode {
    frame: SimFrame,
    tail: SimStack,
    hash: u64,
    depth: usize,
}

/// A persistent (cons-list) simulated suffix stack with O(1) push/pop and
/// precomputed hashes for cheap deduplication.
#[derive(Debug, Clone, Default)]
pub(crate) struct SimStack(Option<Arc<StackNode>>);

impl SimStack {
    /// The empty stack.
    pub fn empty() -> Self {
        SimStack(None)
    }

    /// `true` if the stack has no frames.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Number of frames.
    pub fn depth(&self) -> usize {
        self.0.as_ref().map_or(0, |n| n.depth)
    }

    /// Pushes a frame, sharing this stack as the tail.
    pub fn push(&self, frame: SimFrame) -> SimStack {
        let tail_hash = self.0.as_ref().map_or(0xcbf2_9ce4_8422_2325, |n| n.hash);
        let (l, r, d) = frame.key();
        let mut h = tail_hash;
        for v in [l as u64, r as u64, d as u64] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimStack(Some(Arc::new(StackNode {
            hash: h,
            depth: self.depth() + 1,
            frame,
            tail: self.clone(),
        })))
    }

    /// The top frame, if any.
    pub fn top(&self) -> Option<&SimFrame> {
        self.0.as_ref().map(|n| &n.frame)
    }

    /// The stack below the top frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    // Audited: callers only pop after `top()` returned `Some` (the
    // simulation's return step requires a frame to return from), and the
    // contract is documented above.
    #[allow(clippy::disallowed_methods)]
    pub fn pop(&self) -> SimStack {
        self.0
            .as_ref()
            .map(|n| n.tail.clone())
            .expect("pop on empty SimStack")
    }

    /// Replaces the top frame (e.g. to advance its dot after a simulated
    /// return).
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn replace_top(&self, frame: SimFrame) -> SimStack {
        self.pop().push(frame)
    }

    fn iter_nodes(&self) -> impl Iterator<Item = &SimFrame> {
        let mut cur = self.0.as_deref();
        std::iter::from_fn(move || {
            let node = cur?;
            cur = node.tail.0.as_deref();
            Some(&node.frame)
        })
    }
}

impl PartialEq for SimStack {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                if Arc::ptr_eq(a, b) {
                    return true;
                }
                if a.hash != b.hash || a.depth != b.depth {
                    return false;
                }
                self.iter_nodes()
                    .zip(other.iter_nodes())
                    .all(|(x, y)| x == y)
            }
            _ => false,
        }
    }
}
impl Eq for SimStack {}

impl Hash for SimStack {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.as_ref().map_or(0u64, |n| n.hash).hash(state);
    }
}

impl PartialOrd for SimStack {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimStack {
    /// A total order used only to canonicalize config sets before interning
    /// them as DFA states; it is deterministic within a process run.
    fn cmp(&self, other: &Self) -> Ordering {
        self.depth().cmp(&other.depth()).then_with(|| {
            self.iter_nodes()
                .map(SimFrame::key)
                .cmp(other.iter_nodes().map(SimFrame::key))
        })
    }
}

/// The state of one subparser: either a nonempty simulated stack (stable
/// only when its top dot sits before a terminal) or "accepts exactly at
/// end of input".
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SpState {
    /// Can only succeed if the input ends here.
    AcceptEof,
    /// Frames remain to process.
    Stack(SimStack),
}

impl Hash for SpState {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            SpState::AcceptEof => 0u8.hash(state),
            SpState::Stack(s) => {
                1u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for SpState {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SpState {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (SpState::AcceptEof, SpState::AcceptEof) => Ordering::Equal,
            (SpState::AcceptEof, SpState::Stack(_)) => Ordering::Less,
            (SpState::Stack(_), SpState::AcceptEof) => Ordering::Greater,
            (SpState::Stack(a), SpState::Stack(b)) => a.cmp(b),
        }
    }
}

/// A subparser configuration: the alternative it predicts plus its state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct Config {
    /// The production this subparser votes for.
    pub alt: ProdId,
    /// Its simulated machine state.
    pub state: SpState,
}

/// Whether a closure runs for LL (full caller context) or SLL
/// (context-free, returning through statically computed stable frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimMode {
    /// Precise simulation over the real machine stack.
    Ll,
    /// Context-insensitive simulation (paper §3.5's stable-frame variant).
    Sll,
}

/// Computes the closure of a set of configurations: performs every push
/// and return possible without consuming input, until each surviving
/// subparser is *stable* — its dot sits before a terminal, or it can only
/// accept at end of input.
///
/// Each exploration path carries its own visited set; revisiting a
/// nonterminal on a path without consuming input is exactly a nullable
/// path from the nonterminal to itself, i.e. left recursion, and aborts
/// prediction with `LeftRecursive` (paper §4.1/§5.4 apply the same scheme
/// inside prediction as in the main machine).
pub(crate) fn closure<O: ParseObserver>(
    g: &Grammar,
    analysis: &GrammarAnalysis,
    mode: SimMode,
    configs: Vec<Config>,
    num_nts: usize,
    obs: &mut O,
) -> Result<Vec<Config>, ParseError> {
    let mut out: Vec<Config> = Vec::new();
    let mut emitted: HashSet<Config> = HashSet::new();
    let mut explored: HashSet<Config> = HashSet::new();
    let mut work: Vec<(ProdId, SimStack, NtSet)> = Vec::new();

    let emit = |out: &mut Vec<Config>, emitted: &mut HashSet<Config>, c: Config| {
        if emitted.insert(c.clone()) {
            out.push(c);
        }
    };

    for c in configs {
        match c.state {
            SpState::AcceptEof => emit(&mut out, &mut emitted, c),
            SpState::Stack(stack) => {
                work.push((c.alt, stack, NtSet::with_capacity(num_nts)));
            }
        }
    }

    while let Some((alt, stack, mut visited)) = work.pop() {
        obs.on_closure_step();
        // Process each distinct (alternative, stack) configuration once:
        // converging derivation paths would otherwise re-explore shared
        // continuations exponentially often.
        if !explored.insert(Config {
            alt,
            state: SpState::Stack(stack.clone()),
        }) {
            continue;
        }
        let Some(top) = stack.top() else {
            // Empty stacks are handled eagerly below; reaching here means a
            // caller passed one in, which the constructors never do.
            debug_assert!(false, "closure saw an empty stack");
            continue;
        };
        match top.head() {
            Some(Symbol::T(_)) => {
                // Stable: consuming input is the only way forward.
                emit(
                    &mut out,
                    &mut emitted,
                    Config {
                        alt,
                        state: SpState::Stack(stack),
                    },
                );
            }
            Some(Symbol::Nt(y)) => {
                if visited.contains(y) {
                    return Err(ParseError::LeftRecursive(y));
                }
                visited.insert(y);
                // Mirror the machine's push semantics: the caller's dot
                // passes the nonterminal at push time, so a simulated
                // return is a plain pop.
                let advanced = SimFrame {
                    lhs: top.lhs,
                    rhs: Arc::clone(&top.rhs),
                    dot: top.dot + 1,
                };
                let base = stack.replace_top(advanced);
                for &q in g.alternatives(y) {
                    let pushed = base.push(SimFrame {
                        lhs: Some(y),
                        rhs: g.rhs_arc(q),
                        dot: 0,
                    });
                    work.push((alt, pushed, visited.clone()));
                }
            }
            None => {
                // Exhausted frame: simulated return.
                let finished_lhs = top.lhs;
                let tail = stack.pop();
                if let Some(x) = finished_lhs {
                    visited.remove(x);
                }
                if !tail.is_empty() {
                    // The caller's dot already passed the finished
                    // nonterminal at push time; just resume there.
                    work.push((alt, tail, visited));
                } else {
                    match mode {
                        SimMode::Ll => {
                            // The whole machine stack is consumed: only end
                            // of input can follow.
                            emit(
                                &mut out,
                                &mut emitted,
                                Config {
                                    alt,
                                    state: SpState::AcceptEof,
                                },
                            );
                        }
                        SimMode::Sll => {
                            // Return through the statically computed stable
                            // frames of the finished nonterminal (§3.5).
                            let Some(x) = finished_lhs else {
                                return Err(ParseError::invalid_state(
                                    "SLL simulation frame has no production label",
                                ));
                            };
                            let dests = analysis.stable_frames.dests(x);
                            for pos in &dests.positions {
                                let frame = SimFrame {
                                    lhs: Some(g.production(pos.production).lhs()),
                                    rhs: g.rhs_arc(pos.production),
                                    dot: pos.dot as usize,
                                };
                                // Stable by construction: the dot precedes
                                // a terminal.
                                emit(
                                    &mut out,
                                    &mut emitted,
                                    Config {
                                        alt,
                                        state: SpState::Stack(SimStack::empty().push(frame)),
                                    },
                                );
                            }
                            if dests.can_end {
                                emit(
                                    &mut out,
                                    &mut emitted,
                                    Config {
                                        alt,
                                        state: SpState::AcceptEof,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// The move (consume) step: keeps the subparsers whose next terminal
/// matches `t`, advancing their dots. `AcceptEof` subparsers die — they
/// needed the input to end.
///
/// # Errors
///
/// Only stable configurations (produced by [`closure`]) are valid inputs;
/// a config with an empty simulated stack indicates internal corruption
/// and is reported as a typed `InvalidState` rather than a panic.
pub(crate) fn move_configs(configs: &[Config], t: Terminal) -> Result<Vec<Config>, ParseError> {
    let mut out = Vec::new();
    for c in configs {
        if let SpState::Stack(stack) = &c.state {
            let Some(top) = stack.top() else {
                return Err(ParseError::invalid_state(
                    "unstable configuration (empty simulated stack) in move step",
                ));
            };
            if top.head() == Some(Symbol::T(t)) {
                let advanced = SimFrame {
                    lhs: top.lhs,
                    rhs: Arc::clone(&top.rhs),
                    dot: top.dot + 1,
                };
                out.push(Config {
                    alt: c.alt,
                    state: SpState::Stack(stack.replace_top(advanced)),
                });
            }
        }
    }
    Ok(out)
}

/// The distinct alternatives among a config set, ascending.
pub(crate) fn distinct_alts(configs: &[Config]) -> Vec<ProdId> {
    let mut alts: Vec<ProdId> = configs.iter().map(|c| c.alt).collect();
    alts.sort_unstable();
    alts.dedup();
    alts
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::observe::NullObserver;
    use costar_grammar::GrammarBuilder;

    fn setup() -> (Grammar, GrammarAnalysis) {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        (g, an)
    }

    fn initial_configs(g: &Grammar, name: &str, base: &SimStack) -> Vec<Config> {
        let x = g.symbols().lookup_nonterminal(name).unwrap();
        g.alternatives(x)
            .iter()
            .map(|&q| Config {
                alt: q,
                state: SpState::Stack(base.push(SimFrame {
                    lhs: Some(x),
                    rhs: g.rhs_arc(q),
                    dot: 0,
                })),
            })
            .collect()
    }

    #[test]
    fn persistent_stack_sharing_and_equality() {
        let (g, _) = setup();
        let (pid, _) = g.iter().next().unwrap();
        let f = |dot| SimFrame {
            lhs: None,
            rhs: g.rhs_arc(pid),
            dot,
        };
        let base = SimStack::empty();
        let s1 = base.push(f(0)).push(f(1));
        let s2 = base.push(f(0)).push(f(1));
        assert_eq!(s1, s2);
        assert_eq!(s1.depth(), 2);
        let popped = s1.pop();
        assert_eq!(popped, base.push(f(0)));
        assert_ne!(s1, popped);
    }

    #[test]
    fn closure_expands_to_stable_configs() {
        let (g, an) = setup();
        // LL closure of S's alternatives over an empty outer context: each
        // expands A, whose alternatives start with terminals a and b.
        let configs = initial_configs(&g, "S", &SimStack::empty());
        let stable = closure(
            &g,
            &an,
            SimMode::Ll,
            configs,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        // 2 alternatives x 2 A-expansions = 4 stable configs.
        assert_eq!(stable.len(), 4);
        for c in &stable {
            let SpState::Stack(s) = &c.state else {
                panic!("no EOF-accepting configs expected")
            };
            assert!(matches!(s.top().unwrap().head(), Some(Symbol::T(_))));
        }
    }

    #[test]
    fn closure_detects_left_recursion() {
        let mut gb = GrammarBuilder::new();
        gb.rule("E", &["E", "x"]);
        gb.rule("E", &["y"]);
        let g = gb.start("E").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let configs = initial_configs(&g, "E", &SimStack::empty());
        let err = closure(
            &g,
            &an,
            SimMode::Ll,
            configs,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap_err();
        assert!(matches!(err, ParseError::LeftRecursive(_)));
    }

    #[test]
    fn closure_allows_repeated_nonterminal_after_return() {
        // S -> A A x; A -> ε | a. The second A must not be flagged as left
        // recursion after the first A's ε-expansion returns.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "A", "x"]);
        gb.rule("A", &[]);
        gb.rule("A", &["a"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let configs = initial_configs(&g, "S", &SimStack::empty());
        let stable = closure(
            &g,
            &an,
            SimMode::Ll,
            configs,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        assert!(!stable.is_empty());
    }

    #[test]
    fn move_filters_and_advances() {
        let (g, an) = setup();
        let configs = initial_configs(&g, "S", &SimStack::empty());
        let stable = closure(
            &g,
            &an,
            SimMode::Ll,
            configs,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        let b = g.symbols().lookup_terminal("b").unwrap();
        let moved = move_configs(&stable, b).unwrap();
        // Only the A -> b expansions survive (one per S alternative).
        assert_eq!(moved.len(), 2);
        assert_eq!(distinct_alts(&moved).len(), 2);
    }

    #[test]
    fn sll_empty_stack_returns_via_stable_frames() {
        let (g, an) = setup();
        // Simulate prediction for A in SLL mode with input "b": after
        // consuming b the A -> b subparser's frame is exhausted and its
        // stack empties; it must resume at "S -> A . c" and "S -> A . d".
        let configs = initial_configs(&g, "A", &SimStack::empty());
        let stable = closure(
            &g,
            &an,
            SimMode::Sll,
            configs,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        let b = g.symbols().lookup_terminal("b").unwrap();
        let moved = move_configs(&stable, b).unwrap();
        let after = closure(
            &g,
            &an,
            SimMode::Sll,
            moved,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        // Two stable resumptions, both for the alternative A -> b.
        assert_eq!(after.len(), 2);
        assert_eq!(distinct_alts(&after).len(), 1);
        for c in &after {
            assert!(matches!(c.state, SpState::Stack(_)));
        }
    }

    #[test]
    fn ll_empty_stack_accepts_eof() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a"]);
        let g = gb.start("S").build().unwrap();
        let an = GrammarAnalysis::compute(&g);
        let configs = initial_configs(&g, "S", &SimStack::empty());
        let stable = closure(
            &g,
            &an,
            SimMode::Ll,
            configs,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        let a = g.symbols().lookup_terminal("a").unwrap();
        let moved = move_configs(&stable, a).unwrap();
        let after = closure(
            &g,
            &an,
            SimMode::Ll,
            moved,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(after.len(), 1);
        assert!(matches!(after[0].state, SpState::AcceptEof));
    }

    #[test]
    fn distinct_alts_deduplicates() {
        let (g, an) = setup();
        let configs = initial_configs(&g, "S", &SimStack::empty());
        let stable = closure(
            &g,
            &an,
            SimMode::Ll,
            configs,
            g.num_nonterminals(),
            &mut NullObserver,
        )
        .unwrap();
        assert_eq!(distinct_alts(&stable).len(), 2);
    }
}
