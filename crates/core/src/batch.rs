//! Batch parsing: many inputs, one shared read-only grammar context.
//!
//! The ROADMAP's production north star is corpus-shaped traffic — many
//! independent inputs against one grammar. A [`Parser`](crate::Parser)
//! owns its grammar and analysis by value, so naive fan-out pays the
//! FIRST/FOLLOW/decision-table computation (or at least a deep clone) per
//! worker. [`BatchParser`] instead wraps `Arc<Grammar>` +
//! `Arc<GrammarAnalysis>` (the analysis carries the
//! [`DecisionTable`](costar_grammar::analysis::DecisionTable)) as an
//! immutable shared context: workers borrow it, each owning only a
//! private [`SllCache`].
//!
//! ## Determinism contract
//!
//! Per-input results are a pure function of (grammar, input, budget,
//! prediction mode, cache-start state) — never of worker count or
//! scheduling. Concretely, for every input the outcome, tree,
//! diagnostics, exit class, and the deterministic view of its metrics
//! ([`ParseMetrics::deterministic`]) are byte-identical across runs with
//! any `--jobs` value, and identical to a sequential (`jobs = 1`) run.
//! The design choices that make this true:
//!
//! * every input starts from the same cache state: empty by default, or
//!   (in warm mode, [`BatchParser::with_warm_cache`]) a private clone of
//!   one snapshot taken after a warmup parse — never a cache that other
//!   inputs mutated in a schedule-dependent order;
//! * every input draws from its own fresh [`Budget`] meter, so fuel and
//!   the wall-clock deadline are per parse (see
//!   [`Budget::with_deadline`]), not shared from batch start;
//! * results are scattered back into input order regardless of which
//!   worker finished first.
//!
//! Wall-clock fields (`total_nanos`, latency histograms) are measurement,
//! not behavior, and are excluded from the contract.
//!
//! ## Scheduling
//!
//! Work units are claimed from a shared atomic counter (dynamic load
//! balancing — a worker stuck on a pathological input doesn't idle the
//! rest). Inputs at or above the small-input threshold form singleton
//! units; runs of smaller inputs are grouped so per-unit overhead (the
//! claim, the cache reset bookkeeping, result vector growth) amortizes
//! across a group rather than recurring per tiny file.

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]

use crate::budget::Budget;
use crate::error::ParseError;
use crate::machine::{Machine, ParseOutcome, PredictionMode};
use crate::observe::{MetricsObserver, ParseMetrics};
use crate::prediction::cache::SllCache;
use crate::recover::{self, RecoveredParse};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{Grammar, Token, Tree};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Inputs with at least this many tokens get their own work unit;
/// smaller ones are grouped (see [`BatchParser::with_small_input_threshold`]).
pub const DEFAULT_SMALL_INPUT_THRESHOLD: usize = 256;

/// Upper bound on how many small inputs one work unit may group.
const MAX_GROUP: usize = 64;

/// A parser for running one grammar over many inputs, optionally in
/// parallel, with deterministic per-input results.
///
/// # Examples
///
/// ```
/// use costar::BatchParser;
/// use costar_grammar::{GrammarBuilder, Token};
///
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a", "S"]);
/// gb.rule("S", &["b"]);
/// let g = gb.start("S").build()?;
/// let a = g.symbols().lookup_terminal("a").unwrap();
/// let b = g.symbols().lookup_terminal("b").unwrap();
///
/// let batch = BatchParser::new(g).with_jobs(2);
/// let inputs: Vec<Vec<Token>> = vec![
///     vec![Token::new(a, "a"), Token::new(b, "b")],
///     vec![Token::new(b, "b")],
///     vec![Token::new(a, "a")], // rejected
/// ];
/// let result = batch.parse_many(&inputs);
/// assert_eq!(result.items.len(), 3);
/// assert!(result.items[0].outcome().is_accept());
/// assert!(result.items[1].outcome().is_accept());
/// assert!(!result.items[2].outcome().is_accept());
/// assert_eq!(result.exit_code(), 1); // worst across the batch
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchParser {
    grammar: Arc<Grammar>,
    analysis: Arc<GrammarAnalysis>,
    budget: Budget,
    mode: PredictionMode,
    jobs: usize,
    warm_cache: bool,
    auto_steps: bool,
    small_input_threshold: usize,
}

/// What one input produced: a plain or a recovering parse result.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItemResult {
    /// From [`BatchParser::parse_many`].
    Plain(ParseOutcome),
    /// From [`BatchParser::parse_many_recovering`].
    Recovered(RecoveredParse),
}

/// One input's slot in a [`BatchResult`], in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// The parse result.
    pub result: BatchItemResult,
    /// This input's own metrics (also merged into
    /// [`BatchResult::metrics`]).
    pub metrics: ParseMetrics,
}

impl BatchItem {
    /// The machine outcome, unified across plain and recovering items.
    pub fn outcome(&self) -> &ParseOutcome {
        match &self.result {
            BatchItemResult::Plain(o) => o,
            BatchItemResult::Recovered(r) => &r.outcome,
        }
    }

    /// The parse tree, if one was produced (for recovering items, the
    /// error-annotated tree after recoveries).
    pub fn tree(&self) -> Option<&Tree> {
        match &self.result {
            BatchItemResult::Plain(o) => o.tree(),
            BatchItemResult::Recovered(r) => r.tree(),
        }
    }

    /// The CLI exit class for this input alone: 0 accepted (or recovered
    /// cleanly), 1 rejected or internal error, 3 budget abort, 4 parsed
    /// with recovered errors.
    pub fn exit_code(&self) -> i32 {
        match &self.result {
            BatchItemResult::Plain(o) => match o {
                ParseOutcome::Unique(_) | ParseOutcome::Ambig(_) => 0,
                ParseOutcome::Reject(_) | ParseOutcome::Error(_) => 1,
                ParseOutcome::Aborted(_) => 3,
            },
            BatchItemResult::Recovered(r) => match &r.outcome {
                ParseOutcome::Unique(_) | ParseOutcome::Ambig(_) => 0,
                ParseOutcome::Reject(_) => 4,
                ParseOutcome::Error(_) => 1,
                ParseOutcome::Aborted(_) => 3,
            },
        }
    }
}

/// Everything a batch run produced, in stable input order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One entry per input, index-aligned with the `inputs` slice.
    pub items: Vec<BatchItem>,
    /// All per-input metrics merged in input order
    /// ([`ParseMetrics::merge`]) — one roll-up for the whole batch.
    pub metrics: ParseMetrics,
    /// Worker threads the run actually used.
    pub jobs: usize,
}

impl BatchResult {
    /// Folds the per-input exit classes into one process exit code: the
    /// *most severe* across the batch, under severity
    /// `0 < 4 < 1 < 3` — success, then parsed-with-recovered-errors,
    /// then rejected/internal error, then budget abort (an abort means
    /// the batch's verdict on that input is unknown, which outranks a
    /// definite rejection).
    pub fn exit_code(&self) -> i32 {
        fn severity(code: i32) -> u8 {
            match code {
                0 => 0,
                4 => 1,
                1 => 2,
                _ => 3, // 3 (abort) and anything unexpected
            }
        }
        self.items
            .iter()
            .map(BatchItem::exit_code)
            .max_by_key(|&c| severity(c))
            .unwrap_or(0)
    }
}

impl BatchParser {
    /// Creates a batch parser, computing the grammar analysis once. Jobs
    /// default to the machine's available parallelism; the cache is cold
    /// per input (published CoStar's policy, see
    /// [`Parser::new`](crate::Parser::new)).
    pub fn new(grammar: Grammar) -> Self {
        let analysis = GrammarAnalysis::compute(&grammar);
        Self::with_shared(Arc::new(grammar), Arc::new(analysis))
    }

    /// Creates a batch parser around an already-shared context — e.g. an
    /// analysis restored from the on-disk grammar cache. Like
    /// [`Parser::with_analysis`](crate::Parser::with_analysis), the
    /// analysis must belong to this exact grammar.
    pub fn with_shared(grammar: Arc<Grammar>, analysis: Arc<GrammarAnalysis>) -> Self {
        BatchParser {
            grammar,
            analysis,
            budget: Budget::unlimited(),
            mode: PredictionMode::Adaptive,
            jobs: default_jobs(),
            warm_cache: false,
            auto_steps: false,
            small_input_threshold: DEFAULT_SMALL_INPUT_THRESHOLD,
        }
    }

    /// Sets the worker count. `0` restores the default (available
    /// parallelism). The effective count is additionally capped by the
    /// number of work units, so tiny batches don't spawn idle threads.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 { default_jobs() } else { jobs };
        self
    }

    /// Sets the per-input [`Budget`]. Every input draws from its own
    /// fresh meter — fuel, deadline, and recovery caps are per parse,
    /// never shared across the batch.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the [`PredictionMode`] (ablation control, mirroring
    /// [`Parser::with_ll_only`](crate::Parser::with_ll_only) /
    /// [`Parser::with_no_static_fast_path`](crate::Parser::with_no_static_fast_path)).
    pub fn with_mode(mut self, mode: PredictionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Derives each input's step fuel from the grammar's certified cost
    /// bound instead of a shared `--max-steps` value: input `i` with
    /// `n_i` tokens parses under fuel
    /// [`CostModel::bound_for(n_i)`](costar_grammar::analysis::CostModel::bound_for),
    /// overriding any fuel set via [`BatchParser::with_budget`] (other
    /// budget limits — deadline, stack depth, cache caps — are kept).
    /// Because the certificate claims no accepting or rejecting parse
    /// exceeds the bound, a `StepLimit` abort under auto fuel is evidence
    /// of a parser or certificate bug, never of a large input — and one
    /// long file can never inflate a sibling input's allowance, since
    /// every input's fuel is derived from its own length.
    pub fn with_auto_steps(mut self, on: bool) -> Self {
        self.auto_steps = on;
        self
    }

    /// Enables warm-cache mode: before the batch runs, one warmup parse
    /// of the first input populates an [`SllCache`], a snapshot of which
    /// every input then starts from (each gets a private clone). This is
    /// the deterministic analogue of
    /// [`Parser::with_cache_reuse`](crate::Parser::with_cache_reuse):
    /// cross-input cache value without schedule-dependent cache state.
    /// The warmup parse's own result is discarded, so all inputs —
    /// including the first — observe the identical starting cache.
    pub fn with_warm_cache(mut self, on: bool) -> Self {
        self.warm_cache = on;
        self
    }

    /// Sets the token-count threshold under which inputs are grouped
    /// into shared work units (default
    /// [`DEFAULT_SMALL_INPUT_THRESHOLD`]). `0` disables grouping.
    pub fn with_small_input_threshold(mut self, tokens: usize) -> Self {
        self.small_input_threshold = tokens;
        self
    }

    /// The shared grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The shared analysis.
    pub fn analysis(&self) -> &GrammarAnalysis {
        &self.analysis
    }

    /// The configured worker count (before capping by unit count).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Parses every input (plain, no recovery), in input order.
    pub fn parse_many<I: AsRef<[Token]> + Sync>(&self, inputs: &[I]) -> BatchResult {
        self.run(inputs, false)
    }

    /// Parses every input with syntax-error recovery
    /// ([`Parser::parse_recovering`](crate::Parser::parse_recovering)
    /// semantics per input).
    pub fn parse_many_recovering<I: AsRef<[Token]> + Sync>(&self, inputs: &[I]) -> BatchResult {
        self.run(inputs, true)
    }

    fn run<I: AsRef<[Token]> + Sync>(&self, inputs: &[I], recovering: bool) -> BatchResult {
        let units = plan_units(inputs, self.small_input_threshold);
        let jobs = self.jobs.min(units.len()).max(1);
        let warm = if self.warm_cache {
            inputs
                .first()
                .map(|first| self.warm_snapshot(first.as_ref()))
        } else {
            None
        };
        let warm = warm.as_ref();

        let mut slots: Vec<Option<BatchItem>> = Vec::new();
        slots.resize_with(inputs.len(), || None);

        if jobs == 1 {
            let mut cache = SllCache::new();
            for unit in &units {
                for &i in unit {
                    slots[i] =
                        Some(self.parse_one(inputs[i].as_ref(), &mut cache, warm, recovering));
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let units = &units;
            let collected: Vec<Vec<(usize, BatchItem)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..jobs)
                    .map(|_| {
                        s.spawn(|| {
                            let mut cache = SllCache::new();
                            let mut out: Vec<(usize, BatchItem)> = Vec::new();
                            loop {
                                let u = next.fetch_add(1, Ordering::Relaxed);
                                let Some(unit) = units.get(u) else { break };
                                for &i in unit {
                                    let item = self.parse_one(
                                        inputs[i].as_ref(),
                                        &mut cache,
                                        warm,
                                        recovering,
                                    );
                                    out.push((i, item));
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_default())
                    .collect()
            });
            for (i, item) in collected.into_iter().flatten() {
                slots[i] = Some(item);
            }
        }

        // Per-parse panics are caught inside parse_one; an empty slot can
        // only mean a worker died outside that boundary. Fail the input
        // loudly rather than dropping it from the batch.
        let items: Vec<BatchItem> = slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    let outcome = ParseOutcome::Error(ParseError::invalid_state(
                        "batch worker died before producing a result".to_owned(),
                    ));
                    BatchItem {
                        result: if recovering {
                            BatchItemResult::Recovered(RecoveredParse {
                                error_tree: None,
                                diagnostics: Vec::new(),
                                outcome,
                            })
                        } else {
                            BatchItemResult::Plain(outcome)
                        },
                        metrics: ParseMetrics::default(),
                    }
                })
            })
            .collect();

        let mut metrics = ParseMetrics::default();
        for item in &items {
            metrics.merge(&item.metrics);
        }
        BatchResult {
            items,
            metrics,
            jobs,
        }
    }

    /// Runs the warmup parse for warm-cache mode and returns the cache
    /// to snapshot. The result is discarded (see
    /// [`BatchParser::with_warm_cache`]).
    fn warm_snapshot(&self, word: &[Token]) -> SllCache {
        let budget = self.effective_budget(word);
        let mut cache = SllCache::new();
        cache.set_capacity(budget.max_cache_entries(), budget.max_cache_bytes());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = std::mem::take(&mut cache);
            let outcome =
                Machine::with_budget(&self.grammar, &self.analysis, word, self.mode, &budget)
                    .run(&mut scratch);
            (scratch, outcome)
        }));
        match result {
            Ok((scratch, _outcome)) => scratch,
            // A panicking warmup must not poison the batch: fall back to
            // cold caches (correctness never depended on cache content).
            Err(_) => SllCache::new(),
        }
    }

    /// One budgeted, observed, panic-safe parse — the batch-worker
    /// counterpart of [`Parser::parse_observed`](crate::Parser::parse_observed)
    /// / [`Parser::parse_recovering_observed`](crate::Parser::parse_recovering_observed).
    /// The caller's cache is reset to the input's defined starting state
    /// (warm snapshot clone, or empty) so results are independent of
    /// what the worker parsed before.
    fn parse_one(
        &self,
        word: &[Token],
        cache: &mut SllCache,
        warm: Option<&SllCache>,
        recovering: bool,
    ) -> BatchItem {
        let budget = self.effective_budget(word);
        match warm {
            Some(snapshot) => cache.clone_from(snapshot),
            None => cache.clear(),
        }
        cache.set_capacity(budget.max_cache_entries(), budget.max_cache_bytes());
        let mut obs = MetricsObserver::new();
        let start = Instant::now();
        let result = if recovering {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let machine =
                    Machine::with_budget(&self.grammar, &self.analysis, word, self.mode, &budget);
                recover::run_recovering(
                    &self.analysis,
                    machine,
                    cache,
                    &mut obs,
                    budget.max_recoveries(),
                )
            }));
            match caught {
                Ok(recovered) => BatchItemResult::Recovered(recovered),
                Err(payload) => {
                    cache.clear();
                    BatchItemResult::Recovered(RecoveredParse {
                        error_tree: None,
                        diagnostics: Vec::new(),
                        outcome: panic_outcome(payload),
                    })
                }
            }
        } else {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                Machine::with_budget(&self.grammar, &self.analysis, word, self.mode, &budget)
                    .run_observed(cache, &mut obs)
            }));
            match caught {
                Ok(outcome) => BatchItemResult::Plain(outcome),
                Err(payload) => {
                    cache.clear();
                    BatchItemResult::Plain(panic_outcome(payload))
                }
            }
        };
        let mut metrics = obs.into_metrics();
        metrics.total_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        metrics.tokens = word.len();
        BatchItem { result, metrics }
    }

    /// The budget one input actually parses under: the configured budget,
    /// with step fuel replaced by the certified per-input bound when
    /// auto-steps mode ([`BatchParser::with_auto_steps`]) is on.
    fn effective_budget(&self, word: &[Token]) -> Budget {
        if self.auto_steps {
            self.budget
                .with_max_steps(self.analysis.cost.bound_for(word.len() as u64))
        } else {
            self.budget
        }
    }
}

/// Maps a caught panic payload to the same typed outcome
/// [`Parser::parse`](crate::Parser::parse) produces.
fn panic_outcome(payload: Box<dyn std::any::Any + Send>) -> ParseOutcome {
    let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "non-string panic payload"
    };
    ParseOutcome::Error(ParseError::invalid_state(format!(
        "panic during parse: {msg}"
    )))
}

/// The default worker count: the machine's available parallelism.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Partitions input indices into work units: singletons for inputs at or
/// above `threshold` tokens, runs of consecutive smaller inputs grouped
/// up to [`MAX_GROUP`]. Grouping affects scheduling granularity only —
/// never results, which are defined per input.
fn plan_units<I: AsRef<[Token]>>(inputs: &[I], threshold: usize) -> Vec<Vec<usize>> {
    let mut units: Vec<Vec<usize>> = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        if threshold > 0 && input.as_ref().len() < threshold {
            group.push(i);
            if group.len() >= MAX_GROUP {
                units.push(std::mem::take(&mut group));
            }
        } else {
            if !group.is_empty() {
                units.push(std::mem::take(&mut group));
            }
            units.push(vec![i]);
        }
    }
    if !group.is_empty() {
        units.push(group);
    }
    units
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::budget::AbortReason;
    use crate::Parser;
    use costar_grammar::{tokens, GrammarBuilder};

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    fn fig2_inputs(n: usize) -> Vec<Vec<Token>> {
        let g = fig2();
        let mut tab = g.symbols().clone();
        (0..n)
            .map(|i| {
                let mut w: Vec<(&str, &str)> = vec![("a", "a"); i % 7];
                w.push(("b", "b"));
                w.push(if i % 2 == 0 { ("c", "c") } else { ("d", "d") });
                tokens(&mut tab, &w)
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_parser_exactly() {
        let inputs = fig2_inputs(23);
        let mut seq = Parser::new(fig2());
        let expected: Vec<ParseOutcome> = inputs.iter().map(|w| seq.parse(w)).collect();
        for jobs in [1, 2, 8] {
            let batch = BatchParser::new(fig2()).with_jobs(jobs);
            let got = batch.parse_many(&inputs);
            assert_eq!(got.items.len(), inputs.len());
            for (item, want) in got.items.iter().zip(&expected) {
                assert_eq!(item.outcome(), want, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn deterministic_metrics_identical_across_worker_counts() {
        let inputs = fig2_inputs(17);
        let reference = BatchParser::new(fig2()).with_jobs(1).parse_many(&inputs);
        for jobs in [2, 8] {
            let got = BatchParser::new(fig2()).with_jobs(jobs).parse_many(&inputs);
            for (i, (a, b)) in reference.items.iter().zip(got.items.iter()).enumerate() {
                assert_eq!(
                    a.metrics.deterministic(),
                    b.metrics.deterministic(),
                    "input {i}, jobs={jobs}"
                );
            }
            assert_eq!(
                reference.metrics.deterministic(),
                got.metrics.deterministic(),
                "roll-up, jobs={jobs}"
            );
        }
    }

    #[test]
    fn rollup_metrics_equal_sum_of_items_and_reconcile() {
        let inputs = fig2_inputs(9);
        let r = BatchParser::new(fig2()).with_jobs(3).parse_many(&inputs);
        let mut manual = ParseMetrics::default();
        for item in &r.items {
            assert!(item.metrics.reconciles());
            manual.merge(&item.metrics);
        }
        assert_eq!(manual, r.metrics);
        assert!(r.metrics.reconciles());
        assert_eq!(r.metrics.tokens, inputs.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn exit_code_folding_severity_order() {
        let g = fig2();
        let mut tab = g.symbols().clone();
        let good = tokens(&mut tab, &[("b", "b"), ("c", "c")]);
        let bad = tokens(&mut tab, &[("b", "b")]); // rejected
        let batch = BatchParser::new(fig2()).with_jobs(2);
        assert_eq!(batch.parse_many(std::slice::from_ref(&good)).exit_code(), 0);
        assert_eq!(
            batch.parse_many(&[good.clone(), bad.clone()]).exit_code(),
            1
        );
        // A budget abort outranks a rejection.
        let strict = BatchParser::new(fig2())
            .with_jobs(2)
            .with_budget(Budget::unlimited().with_max_steps(1));
        let r = strict.parse_many(&[bad, good]);
        assert!(matches!(
            r.items[1].outcome(),
            ParseOutcome::Aborted(AbortReason::StepLimit { .. })
        ));
        assert_eq!(r.exit_code(), 3);
        // Recovered-with-errors folds to 4 and is outranked by nothing
        // worse here.
        let mut tab2 = batch.grammar().symbols().clone();
        let fixable = tokens(&mut tab2, &[("b", "b"), ("b", "b"), ("c", "c")]);
        let clean = tokens(&mut tab2, &[("b", "b"), ("d", "d")]);
        let r = batch.parse_many_recovering(&[clean, fixable]);
        assert_eq!(r.items[0].exit_code(), 0);
        assert_eq!(r.items[1].exit_code(), 4);
        assert!(!r.items[1].result_diagnostics_empty());
        assert_eq!(r.exit_code(), 4);
    }

    impl BatchItem {
        fn result_diagnostics_empty(&self) -> bool {
            match &self.result {
                BatchItemResult::Plain(_) => true,
                BatchItemResult::Recovered(r) => r.diagnostics.is_empty(),
            }
        }
    }

    #[test]
    fn recovering_batch_matches_sequential_recovering_parser() {
        let g = fig2();
        let mut tab = g.symbols().clone();
        let words: Vec<Vec<Token>> = vec![
            tokens(&mut tab, &[("b", "b"), ("c", "c")]),
            tokens(&mut tab, &[("a", "a"), ("b", "b")]),
            tokens(&mut tab, &[("b", "b"), ("b", "b"), ("d", "d")]),
            tokens(&mut tab, &[]),
        ];
        let mut seq = Parser::new(fig2());
        let expected: Vec<RecoveredParse> = words.iter().map(|w| seq.parse_recovering(w)).collect();
        for jobs in [1, 4] {
            let got = BatchParser::new(fig2())
                .with_jobs(jobs)
                .parse_many_recovering(&words);
            for (i, (item, want)) in got.items.iter().zip(&expected).enumerate() {
                let BatchItemResult::Recovered(r) = &item.result else {
                    panic!("expected recovered item");
                };
                assert_eq!(r, want, "input {i}, jobs={jobs}");
            }
        }
    }

    #[test]
    fn warm_cache_mode_is_deterministic_and_outcome_identical() {
        let inputs = fig2_inputs(15);
        let cold = BatchParser::new(fig2()).with_jobs(1).parse_many(&inputs);
        let warm1 = BatchParser::new(fig2())
            .with_warm_cache(true)
            .with_jobs(1)
            .parse_many(&inputs);
        let warm4 = BatchParser::new(fig2())
            .with_warm_cache(true)
            .with_jobs(4)
            .parse_many(&inputs);
        for i in 0..inputs.len() {
            assert_eq!(cold.items[i].outcome(), warm1.items[i].outcome());
            assert_eq!(
                warm1.items[i].metrics.deterministic(),
                warm4.items[i].metrics.deterministic(),
                "warm metrics must not depend on worker count (input {i})"
            );
        }
        // The warm snapshot turns repeat predictions into cache hits the
        // cold batch pays as misses.
        assert!(warm1.metrics.cache_hits >= cold.metrics.cache_hits);
    }

    #[test]
    fn small_inputs_group_and_large_inputs_stand_alone() {
        let g = fig2();
        let mut tab = g.symbols().clone();
        let small = tokens(&mut tab, &[("b", "b"), ("c", "c")]);
        let mut big_word: Vec<(&str, &str)> = vec![("a", "a"); 300];
        big_word.push(("b", "b"));
        big_word.push(("c", "c"));
        let big = tokens(&mut tab, &big_word);
        let inputs = vec![small.clone(), small.clone(), big, small];
        let units = plan_units(&inputs, DEFAULT_SMALL_INPUT_THRESHOLD);
        assert_eq!(units, vec![vec![0, 1], vec![2], vec![3]]);
        // Threshold 0 disables grouping.
        let units = plan_units(&inputs, 0);
        assert_eq!(units.len(), 4);
        // Grouping never changes results.
        let grouped = BatchParser::new(fig2()).with_jobs(2).parse_many(&inputs);
        let ungrouped = BatchParser::new(fig2())
            .with_jobs(2)
            .with_small_input_threshold(0)
            .parse_many(&inputs);
        for (a, b) in grouped.items.iter().zip(ungrouped.items.iter()) {
            assert_eq!(a.outcome(), b.outcome());
            assert_eq!(a.metrics.deterministic(), b.metrics.deterministic());
        }
    }

    #[test]
    fn auto_steps_derives_per_input_fuel_from_the_cost_certificate() {
        let inputs = fig2_inputs(12);
        let batch = BatchParser::new(fig2())
            .with_jobs(2)
            // A 1-step shared fuel would abort everything; auto mode must
            // replace it with each input's own certified bound.
            .with_budget(Budget::unlimited().with_max_steps(1))
            .with_auto_steps(true);
        let r = batch.parse_many(&inputs);
        for (i, item) in r.items.iter().enumerate() {
            assert!(
                item.outcome().is_accept(),
                "input {i} aborted under its certified bound"
            );
            let bound = batch.analysis().cost.bound_for(inputs[i].len() as u64);
            assert_eq!(item.metrics.predicted_steps, bound, "input {i}");
            assert_eq!(item.metrics.cost_checks, 1, "input {i}");
            assert_eq!(item.metrics.cost_violations, 0, "input {i}");
            assert!(item.metrics.meter_steps <= bound, "input {i}");
        }
        assert_eq!(r.metrics.cost_violations, 0);
        assert_eq!(r.metrics.cost_checks, inputs.len() as u64);
        // Auto fuel stays deterministic across worker counts.
        let seq = BatchParser::new(fig2())
            .with_jobs(1)
            .with_auto_steps(true)
            .parse_many(&inputs);
        for (a, b) in seq.items.iter().zip(r.items.iter()) {
            assert_eq!(a.metrics.deterministic(), b.metrics.deterministic());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let r = BatchParser::new(fig2()).parse_many(&Vec::<Vec<Token>>::new());
        assert!(r.items.is_empty());
        assert_eq!(r.exit_code(), 0);
        assert_eq!(r.metrics, ParseMetrics::default());
    }

    #[test]
    fn per_input_deadline_not_shared_across_batch() {
        // A batch whose first input aborts on deadline must still give
        // later inputs their full allowance: each parse's meter starts
        // its own clock (Budget::with_deadline batch semantics).
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S"]);
        gb.rule("S", &["b"]);
        let g = gb.start("S").build().unwrap();
        let mut tab = g.symbols().clone();
        let mut huge: Vec<(&str, &str)> = vec![("a", "a"); 5000];
        huge.push(("b", "b"));
        let slow = tokens(&mut tab, &huge);
        let quick = tokens(&mut tab, &[("a", "a"), ("b", "b")]);
        let batch = BatchParser::new(g)
            .with_jobs(1)
            .with_budget(Budget::unlimited().with_deadline(std::time::Duration::from_secs(30)));
        let r = batch.parse_many(&[slow, quick]);
        assert!(
            r.items[1].outcome().is_accept(),
            "the second input must not inherit a clock the first input ran down"
        );
    }
}
