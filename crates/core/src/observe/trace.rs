//! The trace observer: a bounded ring buffer of structured parse events
//! for post-mortem inspection.

use super::{MachineOp, ParseObserver, PredictOutcome, PredictPhase};
use crate::budget::AbortReason;
use costar_grammar::{NonTerminal, SymbolTable};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// What happened, structurally. Counter-style events (cache hits/misses,
/// lookahead tokens, closure steps) are deliberately excluded — they
/// belong to [`MetricsObserver`](super::MetricsObserver); the trace keeps
/// the *shape* of the parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A machine operation completed.
    Op {
        /// Which operation.
        op: MachineOp,
        /// Input cursor before the operation.
        cursor: usize,
        /// Suffix-stack height before the operation.
        stack_height: usize,
    },
    /// A prediction phase began for this decision nonterminal.
    PredictStart {
        /// The decision nonterminal.
        nt: NonTerminal,
        /// SLL or LL.
        phase: PredictPhase,
    },
    /// A prediction phase ended.
    PredictEnd {
        /// The decision nonterminal.
        nt: NonTerminal,
        /// SLL or LL.
        phase: PredictPhase,
        /// How it resolved.
        outcome: PredictOutcome,
    },
    /// An SLL conflict failed over to LL.
    Failover {
        /// The decision nonterminal.
        nt: NonTerminal,
    },
    /// Capacity pressure evicted this many cached DFA states.
    CacheEvictions {
        /// Number of states evicted.
        evicted: u64,
    },
    /// The budget ran out.
    Abort {
        /// Why.
        reason: AbortReason,
    },
}

/// One recorded event: a monotonically increasing sequence number (over
/// *all* events seen, including those the ring has since dropped) plus
/// the event itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// 0-based position of this event in the full event stream.
    pub seq: u64,
    /// The event.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Renders the event on one line, resolving nonterminal names via
    /// `tab` when provided (falling back to `N<index>`).
    pub fn render(&self, tab: Option<&SymbolTable>) -> String {
        let nt_name = |nt: NonTerminal| match tab {
            Some(t) => t.nonterminal_name(nt).to_owned(),
            None => format!("N{}", nt.index()),
        };
        let mut s = format!("[{:>6}] ", self.seq);
        match &self.kind {
            TraceEventKind::Op {
                op,
                cursor,
                stack_height,
            } => {
                let name = match op {
                    MachineOp::Push => "push",
                    MachineOp::Consume => "consume",
                    MachineOp::Return => "return",
                };
                let _ = write!(s, "{name} @tok {cursor} depth {stack_height}");
            }
            TraceEventKind::PredictStart { nt, phase } => {
                let _ = write!(s, "predict {:?} start {}", phase, nt_name(*nt));
            }
            TraceEventKind::PredictEnd { nt, phase, outcome } => {
                let _ = write!(
                    s,
                    "predict {:?} end {} -> {:?}",
                    phase,
                    nt_name(*nt),
                    outcome
                );
            }
            TraceEventKind::Failover { nt } => {
                let _ = write!(s, "failover to LL on {}", nt_name(*nt));
            }
            TraceEventKind::CacheEvictions { evicted } => {
                let _ = write!(s, "cache evicted {evicted} state(s)");
            }
            TraceEventKind::Abort { reason } => {
                let _ = write!(s, "ABORT: {reason}");
            }
        }
        s
    }
}

/// A [`ParseObserver`] that keeps the last `capacity` structured events
/// in a ring buffer. With capacity 0 it records nothing (but still counts
/// sequence numbers), so an always-installed trace costs almost nothing
/// until a buffer is requested.
///
/// Intended use: run with a modest capacity, and on abort/reject dump the
/// buffer ([`TraceObserver::dump`]) to see the machine's final moments.
#[derive(Debug, Default)]
pub struct TraceObserver {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
}

impl TraceObserver {
    /// Creates a trace observer retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceObserver {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
        }
    }

    fn push(&mut self, kind: TraceEventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent { seq, kind });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of retained events (at most the capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events seen, including those the ring has dropped.
    pub fn total_events(&self) -> u64 {
        self.next_seq
    }

    /// Renders the retained events, one per line, oldest first.
    pub fn dump(&self, tab: Option<&SymbolTable>) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str(&ev.render(tab));
            out.push('\n');
        }
        out
    }
}

impl ParseObserver for TraceObserver {
    fn on_op(&mut self, op: MachineOp, cursor: usize, stack_height: usize) {
        self.push(TraceEventKind::Op {
            op,
            cursor,
            stack_height,
        });
    }

    fn on_predict_start(&mut self, x: NonTerminal, phase: PredictPhase) {
        self.push(TraceEventKind::PredictStart { nt: x, phase });
    }

    fn on_predict_end(&mut self, x: NonTerminal, phase: PredictPhase, outcome: PredictOutcome) {
        self.push(TraceEventKind::PredictEnd {
            nt: x,
            phase,
            outcome,
        });
    }

    fn on_failover(&mut self, x: NonTerminal) {
        self.push(TraceEventKind::Failover { nt: x });
    }

    fn on_cache_evictions(&mut self, evicted: u64) {
        self.push(TraceEventKind::CacheEvictions { evicted });
    }

    fn on_abort(&mut self, reason: &AbortReason) {
        self.push(TraceEventKind::Abort { reason: *reason });
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    fn op(cursor: usize) -> TraceEventKind {
        TraceEventKind::Op {
            op: MachineOp::Consume,
            cursor,
            stack_height: 1,
        }
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let mut tr = TraceObserver::new(3);
        for i in 0..5 {
            tr.push(op(i));
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.total_events(), 5);
        let seqs: Vec<u64> = tr.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_records_nothing_but_counts() {
        let mut tr = TraceObserver::new(0);
        tr.push(op(0));
        tr.push(op(1));
        assert!(tr.is_empty());
        assert_eq!(tr.total_events(), 2);
        assert_eq!(tr.dump(None), "");
    }

    #[test]
    fn dump_renders_one_line_per_event() {
        let mut tr = TraceObserver::new(8);
        tr.on_op(MachineOp::Push, 2, 3);
        tr.on_failover(NonTerminal::from_index(0));
        tr.on_abort(&AbortReason::StepLimit { limit: 9 });
        let dump = tr.dump(None);
        assert_eq!(dump.lines().count(), 3);
        assert!(dump.contains("push @tok 2 depth 3"));
        assert!(dump.contains("failover to LL on N0"));
        assert!(dump.contains("ABORT: step budget exhausted (limit 9)"));
    }
}
