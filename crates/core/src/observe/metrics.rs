//! The metrics observer: counters and per-phase latency histograms,
//! aggregated into a serializable [`ParseMetrics`].

use super::{MachineOp, ParseObserver, PredictOutcome, PredictPhase};
use crate::budget::AbortReason;
use costar_grammar::NonTerminal;
use std::fmt::Write as _;
use std::time::Instant;

const BUCKETS: usize = 40;

/// A power-of-two-bucket histogram: bucket `i` counts samples `v` with
/// `2^(i-1) <= v < 2^i` (bucket 0 counts zeros). Fixed size, no
/// allocation, merge-friendly — enough resolution for latency-in-ns and
/// lookahead-depth distributions without a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`: bucket-wise addition, saturating sum,
    /// max of maxes. Merging per-worker histograms is exact — the merged
    /// histogram equals the one a single observer would have recorded
    /// seeing every sample (bucketing is per-sample, order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Nonzero buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }

    fn to_json(&self) -> String {
        let mut s = String::from("{\"count\":");
        let _ = write!(s, "{}", self.count);
        let _ = write!(
            s,
            ",\"sum\":{},\"max\":{},\"mean\":{:.1}",
            self.sum,
            self.max,
            self.mean()
        );
        s.push_str(",\"buckets\":[");
        for (i, (lo, n)) in self.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{lo},{n}]");
        }
        s.push_str("]}");
        s
    }
}

/// Everything a [`MetricsObserver`] measured over one parse. Replaced and
/// subsumed the `InstrumentReport` of earlier revisions (since removed):
/// the old report's five fields live on here (`steps` renamed to
/// [`machine_steps`](ParseMetrics::machine_steps), now counting *every*
/// admitted machine step including the final accepting/rejecting one),
/// joined by the prediction, cache, and timing dimensions.
///
/// Serialize with [`ParseMetrics::to_json`]; check internal consistency
/// with [`ParseMetrics::reconciles`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseMetrics {
    /// Machine steps admitted by the meter (one fuel unit each).
    pub machine_steps: u64,
    /// Push operations performed (= decisions taken).
    pub pushes: u64,
    /// Consume operations performed (= tokens matched into leaves).
    pub consumes: u64,
    /// Return operations performed.
    pub returns: u64,
    /// Maximum suffix-stack height observed.
    pub max_stack_height: usize,
    /// Prediction lookahead tokens admitted by the meter (one fuel unit
    /// each), across both phases.
    pub prediction_steps: u64,
    /// Lookahead tokens admitted during SLL phases.
    pub sll_steps: u64,
    /// Lookahead tokens admitted during LL phases.
    pub ll_steps: u64,
    /// Multi-alternative `adaptivePredict` decisions.
    pub decisions: u64,
    /// Decisions short-circuited (single-alternative nonterminal).
    pub single_alternative: u64,
    /// Decisions committed by SLL without failover.
    pub sll_resolved: u64,
    /// SLL conflicts that failed over to LL.
    pub failovers: u64,
    /// Decisions dispatched through the static LL(1) lookahead map
    /// (no simulation, no cache traffic, no prediction fuel).
    pub static_fast_path_hits: u64,
    /// SLL resolutions checked against a finite certified lookahead bound
    /// from the `costar-cert-v1` audit certificate.
    pub certificate_validations: u64,
    /// Checks where the observed lookahead exceeded the certified bound —
    /// a deflated (understated) certificate, refutable only dynamically.
    pub certificate_failures: u64,
    /// Certified fuel bound `CostModel::bound_for(tokens)` from the
    /// `costar-cost-v1` certificate, recorded when the finished parse was
    /// checked against it (accepting/rejecting parses only). Sums across
    /// merged batch metrics, like `meter_steps`.
    pub predicted_steps: u64,
    /// Finished parses checked against the certified cost bound.
    pub cost_checks: u64,
    /// Checks where metered fuel exceeded the certified bound — a
    /// deflated cost certificate, refutable only dynamically.
    pub cost_violations: u64,
    /// DFA transition lookups issued.
    pub cache_lookups: u64,
    /// Lookups answered from the cache.
    pub cache_hits: u64,
    /// Lookups that required a fresh move+closure computation.
    pub cache_misses: u64,
    /// States evicted under capacity pressure during this parse.
    pub cache_evictions: u64,
    /// Closure worklist items processed (the prediction inner loop).
    pub closure_steps: u64,
    /// Syntax-error recoveries performed (recovering parses only).
    pub recoveries: u64,
    /// Input tokens skipped by panic-mode resynchronization.
    pub tokens_skipped: u64,
    /// Tokens produced by incremental re-lexing of edited regions
    /// ([`Parser::reparse_after_edit`](crate::Parser::reparse_after_edit));
    /// zero for from-scratch parses.
    pub tokens_relexed: u64,
    /// Tokens carried over unscanned from the previous lex (prefix +
    /// rebased suffix) across incremental re-lexes.
    pub tokens_reused: u64,
    /// Wall-clock microseconds spent in incremental re-lexing, summed
    /// across the edits this metrics object covers.
    pub incremental_lex_micros: u64,
    /// Why the parse aborted, if it did.
    pub abort: Option<AbortReason>,
    /// `Meter::steps_taken()` at the end of the parse — the budget
    /// layer's own count, embedded so consumers can verify
    /// [`ParseMetrics::reconciles`] without access to the meter.
    pub meter_steps: u64,
    /// Latency distribution of SLL prediction phases, in nanoseconds.
    pub sll_latency_ns: Histogram,
    /// Latency distribution of LL prediction phases, in nanoseconds.
    pub ll_latency_ns: Histogram,
    /// Lookahead depth distribution per prediction phase.
    pub lookahead_depth: Histogram,
    /// Input length in tokens (filled by
    /// [`Parser::parse_with_metrics`](crate::Parser::parse_with_metrics)).
    pub tokens: usize,
    /// Total wall-clock nanoseconds for the parse (filled by
    /// [`Parser::parse_with_metrics`](crate::Parser::parse_with_metrics)).
    pub total_nanos: u64,
}

impl ParseMetrics {
    /// The cross-layer consistency invariant: the observer's step counts
    /// must reconcile exactly with the meter's, and every cache lookup
    /// must have resolved to a hit or a miss.
    pub fn reconciles(&self) -> bool {
        self.machine_steps + self.prediction_steps == self.meter_steps
            && self.cache_hits + self.cache_misses == self.cache_lookups
            && self.sll_steps + self.ll_steps == self.prediction_steps
    }

    /// Folds the metrics of another parse into `self`, producing a batch
    /// roll-up: counters and histograms add, `max_stack_height` takes the
    /// max, `tokens`/`total_nanos` accumulate, and `abort` keeps the
    /// first abort seen (merge order is the batch's stable input order,
    /// so "first" is deterministic). If each summand
    /// [`reconciles`](ParseMetrics::reconciles), so does the sum — all
    /// three reconciliation equations are linear.
    pub fn merge(&mut self, other: &ParseMetrics) {
        self.machine_steps += other.machine_steps;
        self.pushes += other.pushes;
        self.consumes += other.consumes;
        self.returns += other.returns;
        self.max_stack_height = self.max_stack_height.max(other.max_stack_height);
        self.prediction_steps += other.prediction_steps;
        self.sll_steps += other.sll_steps;
        self.ll_steps += other.ll_steps;
        self.decisions += other.decisions;
        self.single_alternative += other.single_alternative;
        self.sll_resolved += other.sll_resolved;
        self.failovers += other.failovers;
        self.static_fast_path_hits += other.static_fast_path_hits;
        self.certificate_validations += other.certificate_validations;
        self.certificate_failures += other.certificate_failures;
        self.predicted_steps = self.predicted_steps.saturating_add(other.predicted_steps);
        self.cost_checks += other.cost_checks;
        self.cost_violations += other.cost_violations;
        self.cache_lookups += other.cache_lookups;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.closure_steps += other.closure_steps;
        self.recoveries += other.recoveries;
        self.tokens_skipped += other.tokens_skipped;
        self.tokens_relexed += other.tokens_relexed;
        self.tokens_reused += other.tokens_reused;
        self.incremental_lex_micros = self
            .incremental_lex_micros
            .saturating_add(other.incremental_lex_micros);
        if self.abort.is_none() {
            self.abort = other.abort;
        }
        self.meter_steps += other.meter_steps;
        self.sll_latency_ns.merge(&other.sll_latency_ns);
        self.ll_latency_ns.merge(&other.ll_latency_ns);
        self.lookahead_depth.merge(&other.lookahead_depth);
        self.tokens += other.tokens;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
    }

    /// The metrics with every wall-clock-derived field zeroed: latency
    /// histograms cleared and `total_nanos` dropped. What remains is a
    /// pure function of (grammar, input, budget, prediction mode) — this
    /// is the view over which the batch determinism contract is stated:
    /// `a.deterministic() == b.deterministic()` must hold between a
    /// sequential parse and the same input parsed by any worker under any
    /// scheduling, while raw equality would be perturbed by timing noise.
    pub fn deterministic(&self) -> ParseMetrics {
        let mut m = self.clone();
        m.sll_latency_ns = Histogram::default();
        m.ll_latency_ns = Histogram::default();
        m.total_nanos = 0;
        m.incremental_lex_micros = 0;
        m
    }

    /// How much headroom the certified cost bound left: `predicted_steps
    /// / meter_steps`, 0.0 when either side is zero (no check ran, or an
    /// empty parse). A ratio ≥ 1.0 means the certificate held; the
    /// `parse_bench` CI gate keeps this within a fixed envelope so the
    /// bound stays sound *and* usefully tight.
    pub fn cost_bound_ratio(&self) -> f64 {
        if self.meter_steps == 0 || self.predicted_steps == 0 {
            0.0
        } else {
            self.predicted_steps as f64 / self.meter_steps as f64
        }
    }

    /// Fraction of the spliced token vector carried over unscanned from
    /// the previous lex: `tokens_reused / (tokens_relexed +
    /// tokens_reused)`, 0.0 when no incremental re-lex ran. Near 1.0 for
    /// small edits in large files — the quantity the incremental-lexing
    /// speedup claim rides on.
    pub fn splice_reuse_fraction(&self) -> f64 {
        let total = self.tokens_relexed + self.tokens_reused;
        if total == 0 {
            0.0
        } else {
            self.tokens_reused as f64 / total as f64
        }
    }

    /// Cache hit rate in `[0, 1]`; 0.0 with no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Tokens parsed per second; 0.0 if no time was recorded.
    pub fn tokens_per_sec(&self) -> f64 {
        if self.total_nanos == 0 {
            0.0
        } else {
            self.tokens as f64 * 1e9 / self.total_nanos as f64
        }
    }

    /// Serializes the metrics as a self-contained JSON object (no
    /// dependencies; every field name matches the struct field).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(s, "\"machine_steps\":{}", self.machine_steps);
        let _ = write!(s, ",\"pushes\":{}", self.pushes);
        let _ = write!(s, ",\"consumes\":{}", self.consumes);
        let _ = write!(s, ",\"returns\":{}", self.returns);
        let _ = write!(s, ",\"max_stack_height\":{}", self.max_stack_height);
        let _ = write!(s, ",\"prediction_steps\":{}", self.prediction_steps);
        let _ = write!(s, ",\"sll_steps\":{}", self.sll_steps);
        let _ = write!(s, ",\"ll_steps\":{}", self.ll_steps);
        let _ = write!(s, ",\"decisions\":{}", self.decisions);
        let _ = write!(s, ",\"single_alternative\":{}", self.single_alternative);
        let _ = write!(s, ",\"sll_resolved\":{}", self.sll_resolved);
        let _ = write!(s, ",\"failovers\":{}", self.failovers);
        let _ = write!(
            s,
            ",\"static_fast_path_hits\":{}",
            self.static_fast_path_hits
        );
        let _ = write!(
            s,
            ",\"certificate_validations\":{}",
            self.certificate_validations
        );
        let _ = write!(s, ",\"certificate_failures\":{}", self.certificate_failures);
        let _ = write!(s, ",\"predicted_steps\":{}", self.predicted_steps);
        let _ = write!(s, ",\"cost_checks\":{}", self.cost_checks);
        let _ = write!(s, ",\"cost_violations\":{}", self.cost_violations);
        let _ = write!(s, ",\"cost_bound_ratio\":{:.4}", self.cost_bound_ratio());
        let _ = write!(s, ",\"cache_lookups\":{}", self.cache_lookups);
        let _ = write!(s, ",\"cache_hits\":{}", self.cache_hits);
        let _ = write!(s, ",\"cache_misses\":{}", self.cache_misses);
        let _ = write!(s, ",\"cache_evictions\":{}", self.cache_evictions);
        let _ = write!(s, ",\"cache_hit_rate\":{:.4}", self.cache_hit_rate());
        let _ = write!(s, ",\"closure_steps\":{}", self.closure_steps);
        let _ = write!(s, ",\"recoveries\":{}", self.recoveries);
        let _ = write!(s, ",\"tokens_skipped\":{}", self.tokens_skipped);
        let _ = write!(s, ",\"tokens_relexed\":{}", self.tokens_relexed);
        let _ = write!(s, ",\"tokens_reused\":{}", self.tokens_reused);
        let _ = write!(
            s,
            ",\"incremental_lex_micros\":{}",
            self.incremental_lex_micros
        );
        let _ = write!(
            s,
            ",\"splice_reuse_fraction\":{:.4}",
            self.splice_reuse_fraction()
        );
        match &self.abort {
            Some(r) => {
                let _ = write!(s, ",\"abort\":{:?}", r.to_string());
            }
            None => s.push_str(",\"abort\":null"),
        }
        let _ = write!(s, ",\"meter_steps\":{}", self.meter_steps);
        let _ = write!(s, ",\"reconciles\":{}", self.reconciles());
        let _ = write!(s, ",\"tokens\":{}", self.tokens);
        let _ = write!(s, ",\"total_nanos\":{}", self.total_nanos);
        let _ = write!(s, ",\"tokens_per_sec\":{:.1}", self.tokens_per_sec());
        let _ = write!(s, ",\"sll_latency_ns\":{}", self.sll_latency_ns.to_json());
        let _ = write!(s, ",\"ll_latency_ns\":{}", self.ll_latency_ns.to_json());
        let _ = write!(s, ",\"lookahead_depth\":{}", self.lookahead_depth.to_json());
        s.push('}');
        s
    }
}

/// A [`ParseObserver`] that aggregates every event into [`ParseMetrics`].
///
/// Per-phase latency is measured with two `Instant::now()` reads per
/// prediction phase — decisions are rare relative to machine steps, so
/// the clock cost stays out of the hot loop.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    m: ParseMetrics,
    phase_start: Option<Instant>,
    phase_lookahead: u64,
}

impl MetricsObserver {
    /// Creates an observer with zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the metrics accumulated so far.
    pub fn metrics(&self) -> &ParseMetrics {
        &self.m
    }

    /// Consumes the observer, yielding its metrics.
    pub fn into_metrics(self) -> ParseMetrics {
        self.m
    }
}

impl ParseObserver for MetricsObserver {
    fn on_machine_step(&mut self, _cursor: usize, stack_height: usize) {
        self.m.machine_steps += 1;
        self.m.max_stack_height = self.m.max_stack_height.max(stack_height);
    }

    fn on_op(&mut self, op: MachineOp, _cursor: usize, stack_height: usize) {
        match op {
            MachineOp::Push => self.m.pushes += 1,
            MachineOp::Consume => self.m.consumes += 1,
            MachineOp::Return => self.m.returns += 1,
        }
        self.m.max_stack_height = self.m.max_stack_height.max(stack_height);
    }

    fn on_predict_start(&mut self, _x: NonTerminal, _phase: PredictPhase) {
        self.phase_start = Some(Instant::now());
        self.phase_lookahead = 0;
    }

    fn on_lookahead(&mut self, phase: PredictPhase) {
        self.m.prediction_steps += 1;
        self.phase_lookahead += 1;
        match phase {
            PredictPhase::Sll => self.m.sll_steps += 1,
            PredictPhase::Ll => self.m.ll_steps += 1,
        }
    }

    fn on_predict_end(&mut self, _x: NonTerminal, phase: PredictPhase, _outcome: PredictOutcome) {
        if let Some(start) = self.phase_start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            match phase {
                PredictPhase::Sll => self.m.sll_latency_ns.record(ns),
                PredictPhase::Ll => self.m.ll_latency_ns.record(ns),
            }
        }
        self.m.lookahead_depth.record(self.phase_lookahead);
        self.phase_lookahead = 0;
    }

    fn on_decision(&mut self, _x: NonTerminal) {
        self.m.decisions += 1;
    }

    fn on_single_alt(&mut self, _x: NonTerminal) {
        self.m.single_alternative += 1;
    }

    fn on_sll_resolved(&mut self, _x: NonTerminal) {
        self.m.sll_resolved += 1;
    }

    fn on_failover(&mut self, _x: NonTerminal) {
        self.m.failovers += 1;
    }

    fn on_static_fast_path(&mut self, _x: NonTerminal) {
        self.m.static_fast_path_hits += 1;
    }

    fn on_certificate_check(&mut self, _x: NonTerminal, ok: bool) {
        self.m.certificate_validations += 1;
        if !ok {
            self.m.certificate_failures += 1;
        }
    }

    fn on_cost_check(&mut self, predicted_steps: u64, within_bound: bool) {
        self.m.predicted_steps = self.m.predicted_steps.saturating_add(predicted_steps);
        self.m.cost_checks += 1;
        if !within_bound {
            self.m.cost_violations += 1;
        }
    }

    fn on_cache_lookup(&mut self) {
        self.m.cache_lookups += 1;
    }

    fn on_cache_hit(&mut self) {
        self.m.cache_hits += 1;
    }

    fn on_cache_miss(&mut self) {
        self.m.cache_misses += 1;
    }

    fn on_cache_evictions(&mut self, evicted: u64) {
        self.m.cache_evictions += evicted;
    }

    fn on_closure_step(&mut self) {
        self.m.closure_steps += 1;
    }

    fn on_abort(&mut self, reason: &AbortReason) {
        self.m.abort = Some(*reason);
    }

    fn on_recovery(&mut self, _cursor: usize, _reason: &crate::error::RejectReason) {
        self.m.recoveries += 1;
    }

    fn on_resync_skip(&mut self, _cursor: usize) {
        self.m.tokens_skipped += 1;
    }

    fn on_incremental_relex(&mut self, tokens_relexed: u64, tokens_reused: u64, micros: u64) {
        self.m.tokens_relexed += tokens_relexed;
        self.m.tokens_reused += tokens_reused;
        self.m.incremental_lex_micros = self.m.incremental_lex_micros.saturating_add(micros);
    }

    fn on_finish(&mut self, meter_steps: u64) {
        self.m.meter_steps = meter_steps;
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 2.6).abs() < 1e-9);
        // zeros -> bucket 0; 1 -> [1,2); 3 -> [2,4); 8 -> [8,16).
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 2), (2, 1), (8, 1)]);
    }

    #[test]
    fn histogram_saturates_on_huge_samples() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.nonzero_buckets().len(), 1);
    }

    #[test]
    fn reconciles_checks_all_three_equations() {
        let mut m = ParseMetrics {
            machine_steps: 3,
            prediction_steps: 2,
            sll_steps: 2,
            meter_steps: 5,
            cache_lookups: 1,
            cache_misses: 1,
            ..ParseMetrics::default()
        };
        assert!(m.reconciles());
        m.meter_steps = 6;
        assert!(!m.reconciles());
        m.meter_steps = 5;
        m.cache_hits = 1;
        assert!(!m.reconciles());
    }

    #[test]
    fn json_contains_every_headline_field() {
        let mut obs = MetricsObserver::new();
        obs.on_machine_step(0, 1);
        obs.on_op(MachineOp::Consume, 0, 1);
        obs.on_predict_start(
            costar_grammar::NonTerminal::from_index(0),
            PredictPhase::Sll,
        );
        obs.on_lookahead(PredictPhase::Sll);
        obs.on_predict_end(
            costar_grammar::NonTerminal::from_index(0),
            PredictPhase::Sll,
            PredictOutcome::Unique,
        );
        obs.on_finish(2);
        let m = obs.into_metrics();
        assert!(m.reconciles());
        let json = m.to_json();
        for key in [
            "\"machine_steps\":1",
            "\"consumes\":1",
            "\"prediction_steps\":1",
            "\"meter_steps\":2",
            "\"reconciles\":true",
            "\"abort\":null",
            "\"static_fast_path_hits\":0",
            "\"sll_latency_ns\"",
            "\"lookahead_depth\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn histogram_merge_equals_single_observer() {
        let (mut a, mut b, mut whole) = (
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        );
        for v in [0u64, 1, 7, 1 << 20] {
            a.record(v);
            whole.record(v);
        }
        for v in [3u64, 3, u64::MAX] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn metrics_merge_preserves_reconciliation_and_first_abort() {
        let a = ParseMetrics {
            machine_steps: 3,
            prediction_steps: 2,
            sll_steps: 2,
            meter_steps: 5,
            cache_lookups: 2,
            cache_hits: 1,
            cache_misses: 1,
            max_stack_height: 4,
            tokens: 10,
            ..ParseMetrics::default()
        };
        let b = ParseMetrics {
            machine_steps: 1,
            prediction_steps: 3,
            ll_steps: 3,
            meter_steps: 4,
            max_stack_height: 2,
            tokens: 5,
            abort: Some(AbortReason::StepLimit { limit: 4 }),
            ..ParseMetrics::default()
        };
        assert!(a.reconciles() && b.reconciles());
        let mut sum = a.clone();
        sum.merge(&b);
        assert!(sum.reconciles(), "merge must preserve reconciliation");
        assert_eq!(sum.machine_steps, 4);
        assert_eq!(sum.meter_steps, 9);
        assert_eq!(sum.max_stack_height, 4);
        assert_eq!(sum.tokens, 15);
        assert_eq!(sum.abort, Some(AbortReason::StepLimit { limit: 4 }));
        // First abort wins: merging another abort on top doesn't replace it.
        let mut sum2 = sum.clone();
        sum2.merge(&ParseMetrics {
            abort: Some(AbortReason::StepLimit { limit: 9 }),
            ..ParseMetrics::default()
        });
        assert_eq!(sum2.abort, Some(AbortReason::StepLimit { limit: 4 }));
    }

    #[test]
    fn deterministic_view_drops_only_wall_clock_fields() {
        let mut obs = MetricsObserver::new();
        obs.on_predict_start(
            costar_grammar::NonTerminal::from_index(0),
            PredictPhase::Sll,
        );
        obs.on_lookahead(PredictPhase::Sll);
        obs.on_predict_end(
            costar_grammar::NonTerminal::from_index(0),
            PredictPhase::Sll,
            PredictOutcome::Unique,
        );
        obs.on_finish(1);
        let mut m = obs.into_metrics();
        m.total_nanos = 1234;
        let d = m.deterministic();
        assert_eq!(d.total_nanos, 0);
        assert_eq!(d.sll_latency_ns, Histogram::default());
        // Lookahead depth is input-determined, not wall-clock: kept.
        assert_eq!(d.lookahead_depth.count(), 1);
        assert_eq!(d.sll_steps, 1);
        assert!(d.reconciles());
    }

    #[test]
    fn certificate_checks_are_counted_and_serialized() {
        let mut obs = MetricsObserver::new();
        let x = costar_grammar::NonTerminal::from_index(0);
        obs.on_certificate_check(x, true);
        obs.on_certificate_check(x, true);
        obs.on_certificate_check(x, false);
        let m = obs.into_metrics();
        assert_eq!(m.certificate_validations, 3);
        assert_eq!(m.certificate_failures, 1);
        let json = m.to_json();
        assert!(json.contains("\"certificate_validations\":3"));
        assert!(json.contains("\"certificate_failures\":1"));
        let mut sum = m.clone();
        sum.merge(&m);
        assert_eq!(sum.certificate_validations, 6);
        assert_eq!(sum.certificate_failures, 2);
    }

    #[test]
    fn cost_checks_are_counted_and_serialized() {
        let mut obs = MetricsObserver::new();
        obs.on_cost_check(120, true);
        obs.on_cost_check(80, false);
        let mut m = obs.into_metrics();
        assert_eq!(m.predicted_steps, 200);
        assert_eq!(m.cost_checks, 2);
        assert_eq!(m.cost_violations, 1);
        m.meter_steps = 100;
        assert!((m.cost_bound_ratio() - 2.0).abs() < 1e-9);
        let json = m.to_json();
        assert!(json.contains("\"predicted_steps\":200"));
        assert!(json.contains("\"cost_checks\":2"));
        assert!(json.contains("\"cost_violations\":1"));
        assert!(json.contains("\"cost_bound_ratio\":2.0000"));
        let mut sum = m.clone();
        sum.merge(&m);
        assert_eq!(sum.predicted_steps, 400);
        assert_eq!(sum.cost_checks, 4);
        assert_eq!(sum.cost_violations, 2);
        assert_eq!(ParseMetrics::default().cost_bound_ratio(), 0.0);
    }

    #[test]
    fn incremental_relex_counters_and_reuse_fraction() {
        let mut obs = MetricsObserver::new();
        obs.on_incremental_relex(2, 98, 40);
        obs.on_incremental_relex(3, 97, 2);
        let m = obs.into_metrics();
        assert_eq!(m.tokens_relexed, 5);
        assert_eq!(m.tokens_reused, 195);
        assert_eq!(m.incremental_lex_micros, 42);
        assert!((m.splice_reuse_fraction() - 0.975).abs() < 1e-9);
        let json = m.to_json();
        assert!(json.contains("\"tokens_relexed\":5"));
        assert!(json.contains("\"tokens_reused\":195"));
        assert!(json.contains("\"incremental_lex_micros\":42"));
        assert!(json.contains("\"splice_reuse_fraction\":0.9750"));
        // The micros are wall clock and leave the deterministic view; the
        // token counts are input-determined and stay.
        let d = m.deterministic();
        assert_eq!(d.incremental_lex_micros, 0);
        assert_eq!(d.tokens_relexed, 5);
        assert_eq!(d.tokens_reused, 195);
        let mut sum = m.clone();
        sum.merge(&m);
        assert_eq!(sum.tokens_relexed, 10);
        assert_eq!(sum.tokens_reused, 390);
        assert_eq!(sum.incremental_lex_micros, 84);
        assert_eq!(ParseMetrics::default().splice_reuse_fraction(), 0.0);
    }

    #[test]
    fn abort_serialized_as_string() {
        let mut obs = MetricsObserver::new();
        obs.on_abort(&AbortReason::StepLimit { limit: 7 });
        let m = obs.into_metrics();
        assert!(m
            .to_json()
            .contains("\"abort\":\"step budget exhausted (limit 7)\""));
    }
}
