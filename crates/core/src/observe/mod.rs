//! Parse-time observability: a zero-cost-when-disabled hook layer.
//!
//! The paper's empirical claims (§6: linear-time behavior, SLL almost
//! always suffices, the cache is what makes ALL(*) fast) are statements
//! about *where the work goes*. This module provides the vantage point:
//! a [`ParseObserver`] trait whose hooks fire on every machine step,
//! prediction entry/exit, lookahead token, cache lookup, closure
//! iteration, and abort.
//!
//! Observers are threaded through the machine and the prediction engine
//! as a **monomorphized generic parameter**, never a trait object. The
//! default [`NullObserver`] implements every hook with the empty default
//! body, so the compiler inlines and eliminates the entire layer from the
//! unobserved path — `Machine::run` and `Parser::parse` compile to the
//! same code as before the layer existed (the `ablation_observer_overhead`
//! criterion bench pins this claim).
//!
//! Two concrete observers ship with the crate:
//!
//! * [`MetricsObserver`] aggregates counters and per-phase latency
//!   histograms into a serializable [`ParseMetrics`];
//! * [`TraceObserver`] keeps a bounded ring buffer of structured
//!   [`TraceEvent`]s for post-mortem dumps on abort/reject.
//!
//! ## Hook timing and the reconciliation invariant
//!
//! [`ParseObserver::on_machine_step`] fires immediately after the
//! machine's successful `Meter::charge(1)`, and
//! [`ParseObserver::on_lookahead`] immediately after each successful
//! prediction charge. A failed charge fires neither (and, per the
//! `Meter::charge` contract, does not count toward `steps_taken()`).
//! Consequently, for every parse:
//!
//! ```text
//! machine_steps + prediction_steps == Meter::steps_taken()
//! ```
//!
//! — the observability layer and the budget layer can never disagree.
//! A property test (`tests/observer_properties.rs`) enforces this for
//! arbitrary grammar/input pairs, including aborted parses.

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
mod metrics;
mod trace;

pub use metrics::{Histogram, MetricsObserver, ParseMetrics};
pub use trace::{TraceEvent, TraceEventKind, TraceObserver};

use crate::budget::AbortReason;
use costar_grammar::NonTerminal;

/// The three machine operations (paper §3.3), as classified by the step
/// that performed them. The final accept/reject/error step performs none
/// of these, so per-op counts sum to *at most* the machine step count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineOp {
    /// A push operation (a prediction decision was made).
    Push,
    /// A consume operation (one input token matched).
    Consume,
    /// A return operation (a completed nonterminal popped).
    Return,
}

/// Which prediction engine a hook refers to (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictPhase {
    /// Cached, context-insensitive SLL simulation.
    Sll,
    /// Precise LL simulation over the machine's real stack.
    Ll,
}

/// How a prediction phase resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictOutcome {
    /// A single alternative survived.
    Unique,
    /// Several alternatives survived to end of input (for SLL this is a
    /// conflict that triggers LL failover; for LL it is true ambiguity).
    Ambig,
    /// No alternative survived.
    Reject,
    /// Prediction hit an inconsistent state or left recursion.
    Error,
    /// The budget ran out mid-prediction.
    Abort,
}

/// Hooks into the parse. All methods have empty default bodies, so an
/// implementor only overrides the events it cares about and an observer
/// that overrides nothing — [`NullObserver`] — costs nothing.
///
/// Hooks marked *post-charge* fire only after the corresponding
/// `Meter::charge` succeeded; see the module docs for the reconciliation
/// invariant this buys.
pub trait ParseObserver {
    /// One machine step was admitted (*post-charge*). `cursor` is the
    /// input position and `stack_height` the suffix-stack height before
    /// the operation runs.
    #[inline]
    fn on_machine_step(&mut self, _cursor: usize, _stack_height: usize) {}

    /// A machine step completed operation `op` (fires only for steps that
    /// continue the parse, not for the final accept/reject/error step).
    #[inline]
    fn on_op(&mut self, _op: MachineOp, _cursor: usize, _stack_height: usize) {}

    /// A prediction phase began for decision nonterminal `x`.
    #[inline]
    fn on_predict_start(&mut self, _x: NonTerminal, _phase: PredictPhase) {}

    /// One lookahead token was admitted inside a prediction phase
    /// (*post-charge*).
    #[inline]
    fn on_lookahead(&mut self, _phase: PredictPhase) {}

    /// A prediction phase ended.
    #[inline]
    fn on_predict_end(&mut self, _x: NonTerminal, _phase: PredictPhase, _outcome: PredictOutcome) {}

    /// `adaptivePredict` ran a real (multi-alternative) decision.
    #[inline]
    fn on_decision(&mut self, _x: NonTerminal) {}

    /// A decision short-circuited because its nonterminal has a single
    /// alternative.
    #[inline]
    fn on_single_alt(&mut self, _x: NonTerminal) {}

    /// A decision was committed from the SLL phase without failover.
    #[inline]
    fn on_sll_resolved(&mut self, _x: NonTerminal) {}

    /// An SLL conflict triggered failover to LL prediction (§3.4).
    #[inline]
    fn on_failover(&mut self, _x: NonTerminal) {}

    /// A decision was dispatched through the static LL(1) lookahead map,
    /// skipping subparser simulation and cache traffic entirely.
    #[inline]
    fn on_static_fast_path(&mut self, _x: NonTerminal) {}

    /// An SLL decision with a finite certified lookahead bound (the
    /// `costar-cert-v1` audit certificate) resolved; `ok` reports whether
    /// the observed lookahead stayed within the certified bound. A `false`
    /// here means the certificate *understated* the bound — the one claim
    /// static replay cannot refute (sufficiency is universal over inputs),
    /// checked dynamically instead. Fires only at committed SLL
    /// resolutions (unique or reject), never on conflicts that fail over.
    #[inline]
    fn on_certificate_check(&mut self, _x: NonTerminal, _ok: bool) {}

    /// A DFA transition lookup is about to run.
    #[inline]
    fn on_cache_lookup(&mut self) {}

    /// The transition lookup was answered from the cache.
    #[inline]
    fn on_cache_hit(&mut self) {}

    /// The transition lookup missed; a move+closure computation follows.
    #[inline]
    fn on_cache_miss(&mut self) {}

    /// Interning evicted `evicted` states to stay under the capacity caps.
    #[inline]
    fn on_cache_evictions(&mut self, _evicted: u64) {}

    /// One closure worklist item was processed (a simulated push, return,
    /// or stable-config emission — the inner loop of prediction).
    #[inline]
    fn on_closure_step(&mut self) {}

    /// The budget ran out. Fires at the site of the failed charge (or
    /// depth check), before the abort propagates outward.
    #[inline]
    fn on_abort(&mut self, _reason: &AbortReason) {}

    /// A recovering parse ([`crate::Parser::parse_recovering`]) caught a
    /// rejection at input position `cursor` and is about to resynchronize.
    /// The plain parse path never fires this.
    #[inline]
    fn on_recovery(&mut self, _cursor: usize, _reason: &crate::error::RejectReason) {}

    /// Panic-mode resynchronization skipped the token at `cursor`
    /// (one event per skipped token).
    #[inline]
    fn on_resync_skip(&mut self, _cursor: usize) {}

    /// An accepting or rejecting parse finished and its metered fuel was
    /// compared against the grammar's certified cost bound
    /// (`costar-cost-v1`, see `CostModel::bound_for`): `predicted_steps`
    /// is the bound for this input's length and `within_bound` whether
    /// `Meter::steps_taken() ≤ predicted_steps` held. A `false` means the
    /// certificate *understated* the cost — exactly the deflation failure
    /// mode [`ParseObserver::on_certificate_check`] catches for lookahead
    /// bounds, caught dynamically because static replay can only pin the
    /// derivation, not the universal claim over inputs. Never fires for
    /// errored or aborted parses (the bound's claim covers accepting and
    /// rejecting parses only) nor from the recovering driver (resync work
    /// is outside the certified budget). Fires just before
    /// [`ParseObserver::on_finish`].
    #[inline]
    fn on_cost_check(&mut self, _predicted_steps: u64, _within_bound: bool) {}

    /// An edit session spliced fresh tokens into its cached token vector
    /// ([`crate::Parser::reparse_after_edit`]): `tokens_relexed` came from
    /// re-scanning the damaged region, `tokens_reused` were carried over
    /// from the previous lex (prefix + rebased suffix), and the re-lex
    /// took `micros` microseconds of wall clock. Fires once per applied
    /// edit, before any re-parse events; batch parses never fire it.
    #[inline]
    fn on_incremental_relex(&mut self, _tokens_relexed: u64, _tokens_reused: u64, _micros: u64) {}

    /// The parse finished with `meter_steps` total fuel charged —
    /// machine steps plus prediction lookahead.
    #[inline]
    fn on_finish(&mut self, _meter_steps: u64) {}
}

/// The do-nothing observer: every hook keeps its empty default body, so
/// the monomorphized parse loop contains no observer code at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl ParseObserver for NullObserver {}

/// A pair of observers receiving every event, in order. Composes e.g. a
/// [`MetricsObserver`] with a [`TraceObserver`] for one parse.
impl<A: ParseObserver, B: ParseObserver> ParseObserver for (A, B) {
    #[inline]
    fn on_machine_step(&mut self, cursor: usize, stack_height: usize) {
        self.0.on_machine_step(cursor, stack_height);
        self.1.on_machine_step(cursor, stack_height);
    }
    #[inline]
    fn on_op(&mut self, op: MachineOp, cursor: usize, stack_height: usize) {
        self.0.on_op(op, cursor, stack_height);
        self.1.on_op(op, cursor, stack_height);
    }
    #[inline]
    fn on_predict_start(&mut self, x: NonTerminal, phase: PredictPhase) {
        self.0.on_predict_start(x, phase);
        self.1.on_predict_start(x, phase);
    }
    #[inline]
    fn on_lookahead(&mut self, phase: PredictPhase) {
        self.0.on_lookahead(phase);
        self.1.on_lookahead(phase);
    }
    #[inline]
    fn on_predict_end(&mut self, x: NonTerminal, phase: PredictPhase, outcome: PredictOutcome) {
        self.0.on_predict_end(x, phase, outcome);
        self.1.on_predict_end(x, phase, outcome);
    }
    #[inline]
    fn on_decision(&mut self, x: NonTerminal) {
        self.0.on_decision(x);
        self.1.on_decision(x);
    }
    #[inline]
    fn on_single_alt(&mut self, x: NonTerminal) {
        self.0.on_single_alt(x);
        self.1.on_single_alt(x);
    }
    #[inline]
    fn on_sll_resolved(&mut self, x: NonTerminal) {
        self.0.on_sll_resolved(x);
        self.1.on_sll_resolved(x);
    }
    #[inline]
    fn on_failover(&mut self, x: NonTerminal) {
        self.0.on_failover(x);
        self.1.on_failover(x);
    }
    #[inline]
    fn on_static_fast_path(&mut self, x: NonTerminal) {
        self.0.on_static_fast_path(x);
        self.1.on_static_fast_path(x);
    }
    #[inline]
    fn on_certificate_check(&mut self, x: NonTerminal, ok: bool) {
        self.0.on_certificate_check(x, ok);
        self.1.on_certificate_check(x, ok);
    }
    #[inline]
    fn on_cache_lookup(&mut self) {
        self.0.on_cache_lookup();
        self.1.on_cache_lookup();
    }
    #[inline]
    fn on_cache_hit(&mut self) {
        self.0.on_cache_hit();
        self.1.on_cache_hit();
    }
    #[inline]
    fn on_cache_miss(&mut self) {
        self.0.on_cache_miss();
        self.1.on_cache_miss();
    }
    #[inline]
    fn on_cache_evictions(&mut self, evicted: u64) {
        self.0.on_cache_evictions(evicted);
        self.1.on_cache_evictions(evicted);
    }
    #[inline]
    fn on_closure_step(&mut self) {
        self.0.on_closure_step();
        self.1.on_closure_step();
    }
    #[inline]
    fn on_abort(&mut self, reason: &AbortReason) {
        self.0.on_abort(reason);
        self.1.on_abort(reason);
    }
    #[inline]
    fn on_recovery(&mut self, cursor: usize, reason: &crate::error::RejectReason) {
        self.0.on_recovery(cursor, reason);
        self.1.on_recovery(cursor, reason);
    }
    #[inline]
    fn on_resync_skip(&mut self, cursor: usize) {
        self.0.on_resync_skip(cursor);
        self.1.on_resync_skip(cursor);
    }
    #[inline]
    fn on_cost_check(&mut self, predicted_steps: u64, within_bound: bool) {
        self.0.on_cost_check(predicted_steps, within_bound);
        self.1.on_cost_check(predicted_steps, within_bound);
    }
    #[inline]
    fn on_incremental_relex(&mut self, tokens_relexed: u64, tokens_reused: u64, micros: u64) {
        self.0
            .on_incremental_relex(tokens_relexed, tokens_reused, micros);
        self.1
            .on_incremental_relex(tokens_relexed, tokens_reused, micros);
    }
    #[inline]
    fn on_finish(&mut self, meter_steps: u64) {
        self.0.on_finish(meter_steps);
        self.1.on_finish(meter_steps);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting(u64);
    impl ParseObserver for Counting {
        fn on_machine_step(&mut self, _c: usize, _h: usize) {
            self.0 += 1;
        }
        fn on_lookahead(&mut self, _p: PredictPhase) {
            self.0 += 1;
        }
    }

    #[test]
    fn pair_observer_forwards_to_both() {
        let mut pair = (Counting::default(), Counting::default());
        pair.on_machine_step(0, 1);
        pair.on_lookahead(PredictPhase::Sll);
        pair.on_cache_hit(); // default body: no count
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);
    }

    #[test]
    fn null_observer_accepts_every_event() {
        let mut null = NullObserver;
        null.on_machine_step(0, 0);
        null.on_op(MachineOp::Consume, 0, 1);
        null.on_abort(&crate::budget::AbortReason::StepLimit { limit: 1 });
        null.on_finish(0);
    }
}
