//! Machine states (paper §3.2).
//!
//! A machine state `σ ∈ Φ × Ψ × Δ × w × S(N) × B` bundles the prefix
//! stack, suffix stack, prediction cache, remaining tokens, visited
//! nonterminal set, and uniqueness flag. The cache `Δ` is threaded
//! separately in this implementation (see [`crate::SllCache`]) so that it
//! can optionally persist across inputs; everything else lives in
//! [`MachineState`].
//!
//! ## Frame representation
//!
//! The paper draws a suffix frame as its list of unprocessed symbols, with
//! the caller's nonterminal still at the head of the caller frame (Fig. 4's
//! `[Xβ₁]`). Like the Coq development, we instead advance the caller's dot
//! *at push time* and record the pushed nonterminal in the new frame's
//! `caller` field — the same information, arranged so that a frame's
//! unprocessed count is exactly what the `stackScore` measure needs
//! (§4.3): with this arrangement a push trades the caller's head symbol
//! (weight `bᵉ`) for a new top frame worth at most `bᵉ⁻¹·(b-1) < bᵉ`,
//! which is why pushes strictly decrease the score (Lemma 4.3).

#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]
use costar_grammar::{NonTerminal, Symbol, Tree};
use std::sync::Arc;

/// A suffix-stack frame: a grammar right-hand side with a dot marking how
/// far the machine has progressed, plus the nonterminal the frame was
/// pushed for (`None` for the bottom frame, which holds the start symbol).
#[derive(Debug, Clone)]
pub struct SuffixFrame {
    /// The nonterminal whose prediction created this frame; the "open
    /// nonterminal" a return operation reduces (paper §3.3).
    pub caller: Option<NonTerminal>,
    /// The sentential form this frame processes (a production right-hand
    /// side, or `[S]` for the bottom frame).
    pub rhs: Arc<[Symbol]>,
    /// Symbols before `dot` are processed; `rhs[dot..]` are unprocessed.
    pub dot: usize,
}

impl SuffixFrame {
    /// The unprocessed symbols of this frame.
    pub fn unprocessed(&self) -> &[Symbol] {
        &self.rhs[self.dot..]
    }

    /// The symbol at the dot, if the frame is not exhausted.
    pub fn head(&self) -> Option<Symbol> {
        self.rhs.get(self.dot).copied()
    }

    /// `true` when every symbol has been processed.
    pub fn is_exhausted(&self) -> bool {
        self.dot >= self.rhs.len()
    }
}

/// A prefix-stack frame: the partial derivation (forest) for the processed
/// symbols of the corresponding suffix frame.
#[derive(Debug, Clone, Default)]
pub struct PrefixFrame {
    /// One tree per processed symbol, in order. The roots of these trees
    /// spell the processed symbols (`rhs[..dot]` of the matching suffix
    /// frame) — the stack well-formedness invariant of paper Fig. 4.
    pub trees: Vec<Tree>,
}

/// The mutable machine state threaded through [`crate::Machine::step`].
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Prefix stack `Φ`, bottom at index 0, top at the end.
    pub prefix: Vec<PrefixFrame>,
    /// Suffix stack `Ψ`, bottom at index 0, top at the end.
    pub suffix: Vec<SuffixFrame>,
    /// Index of the next token to consume in the input word.
    pub cursor: usize,
    /// Visited nonterminals: opened but not fully processed since the last
    /// consume (paper §4.1). Grows on push, shrinks on return, clears on
    /// consume.
    pub visited: costar_grammar::NtSet,
    /// `false` once prediction has detected that the input is ambiguous.
    pub unique: bool,
}

impl MachineState {
    /// The initial state for a parse rooted at `start`: one empty prefix
    /// frame and one suffix frame holding the start symbol (the paper's
    /// `WfInit` configuration, Fig. 4).
    pub fn initial(start: NonTerminal, num_nonterminals: usize) -> Self {
        MachineState {
            prefix: vec![PrefixFrame::default()],
            suffix: vec![SuffixFrame {
                caller: None,
                rhs: Arc::from([Symbol::Nt(start)]),
                dot: 0,
            }],
            cursor: 0,
            visited: costar_grammar::NtSet::with_capacity(num_nonterminals),
            unique: true,
        }
    }

    /// Height of the suffix stack (third component of the termination
    /// measure, §4.2).
    pub fn stack_height(&self) -> usize {
        self.suffix.len()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_shape() {
        let s = MachineState::initial(NonTerminal::from_index(0), 4);
        assert_eq!(s.prefix.len(), 1);
        assert_eq!(s.suffix.len(), 1);
        assert!(s.prefix[0].trees.is_empty());
        assert_eq!(s.suffix[0].rhs.len(), 1);
        assert_eq!(s.suffix[0].dot, 0);
        assert!(s.suffix[0].caller.is_none());
        assert!(s.unique);
        assert_eq!(s.cursor, 0);
        assert!(s.visited.is_empty());
    }

    #[test]
    fn frame_head_and_exhaustion() {
        let mut f = SuffixFrame {
            caller: None,
            rhs: Arc::from([Symbol::Nt(NonTerminal::from_index(0))]),
            dot: 0,
        };
        assert!(f.head().is_some());
        assert!(!f.is_exhausted());
        assert_eq!(f.unprocessed().len(), 1);
        f.dot = 1;
        assert!(f.head().is_none());
        assert!(f.is_exhausted());
        assert!(f.unprocessed().is_empty());
    }
}
