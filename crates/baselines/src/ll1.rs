//! An LL(1) parser generator.
//!
//! The predecessor to CoStar (Lasser et al., *A Verified LL(1) Parser
//! Generator*, ITP 2019 — paper §7) handles only LL(1) grammars: those
//! parseable with one token of lookahead through a static table. Building
//! it here serves two purposes: it is the expressiveness foil (the
//! paper's XML grammar is not LL(k), so table construction must *fail* on
//! it — reproduced in the `xml_not_ll1` integration test), and a
//! performance comparator on grammars that are LL(1), such as JSON.

use costar_grammar::analysis::{FirstSets, FollowSets, NullableSet};
use costar_grammar::{Grammar, NonTerminal, ProdId, Symbol, Terminal, Token, Tree};
use std::collections::HashMap;
use std::fmt;

/// Why a grammar is not LL(1): two productions of one nonterminal compete
/// for the same lookahead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ll1Conflict {
    /// The nonterminal whose table row conflicts.
    pub nonterminal: NonTerminal,
    /// The lookahead terminal (`None` = end of input).
    pub lookahead: Option<Terminal>,
    /// The two competing productions.
    pub productions: (ProdId, ProdId),
}

impl fmt::Display for Ll1Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LL(1) conflict on {} at lookahead {:?}",
            self.nonterminal, self.lookahead
        )
    }
}

impl std::error::Error for Ll1Conflict {}

/// A compiled LL(1) parse table.
///
/// # Examples
///
/// ```
/// use costar_baselines::Ll1Parser;
/// use costar_grammar::{GrammarBuilder, Token};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("list", &["Int", "tail"]);
/// gb.rule("tail", &["Comma", "Int", "tail"]);
/// gb.rule("tail", &[]);
/// let g = gb.start("list").build()?;
/// let parser = Ll1Parser::generate(&g).expect("grammar is LL(1)");
/// let t = |n: &str| Token::new(g.symbols().lookup_terminal(n).unwrap(), n);
/// assert!(parser.parse(&[t("Int"), t("Comma"), t("Int")]).is_some());
/// assert!(parser.parse(&[t("Comma")]).is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ll1Parser {
    grammar: Grammar,
    /// `table[nt][terminal]` plus a per-nt end-of-input entry.
    table: Vec<HashMap<Terminal, ProdId>>,
    eof_entry: Vec<Option<ProdId>>,
}

impl Ll1Parser {
    /// Builds the LL(1) table, failing on the first conflict.
    ///
    /// # Errors
    ///
    /// Returns the first [`Ll1Conflict`] found — the witness that the
    /// grammar is outside the LL(1) class.
    pub fn generate(g: &Grammar) -> Result<Ll1Parser, Ll1Conflict> {
        let nullable = NullableSet::compute(g);
        let first = FirstSets::compute(g, &nullable);
        let follow = FollowSets::compute(g, &nullable, &first);

        let n = g.num_nonterminals();
        let mut table: Vec<HashMap<Terminal, ProdId>> = vec![HashMap::new(); n];
        let mut eof_entry: Vec<Option<ProdId>> = vec![None; n];

        for (pid, p) in g.iter() {
            let x = p.lhs();
            let select = first.first_of_form(p.rhs(), &nullable);
            let mut insert = |t: Terminal| -> Result<(), Ll1Conflict> {
                if let Some(&other) = table[x.index()].get(&t) {
                    if other != pid {
                        return Err(Ll1Conflict {
                            nonterminal: x,
                            lookahead: Some(t),
                            productions: (other, pid),
                        });
                    }
                } else {
                    table[x.index()].insert(t, pid);
                }
                Ok(())
            };
            for t in select.iter() {
                insert(t)?;
            }
            if nullable.form_nullable(p.rhs()) {
                for t in follow.follow(x).iter() {
                    insert(t)?;
                }
                if follow.eof_follows(x) {
                    if let Some(other) = eof_entry[x.index()] {
                        if other != pid {
                            return Err(Ll1Conflict {
                                nonterminal: x,
                                lookahead: None,
                                productions: (other, pid),
                            });
                        }
                    } else {
                        eof_entry[x.index()] = Some(pid);
                    }
                }
            }
        }

        Ok(Ll1Parser {
            grammar: g.clone(),
            table,
            eof_entry,
        })
    }

    /// The grammar the table was generated from.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Parses `word`, returning its parse tree or `None` on rejection.
    /// LL(1) grammars are unambiguous, so no ambiguity label is needed.
    pub fn parse(&self, word: &[Token]) -> Option<Tree> {
        struct Frame {
            rhs: std::sync::Arc<[Symbol]>,
            dot: usize,
            caller: Option<NonTerminal>,
            trees: Vec<Tree>,
        }
        let g = &self.grammar;
        let mut stack = vec![Frame {
            rhs: std::sync::Arc::from([Symbol::Nt(g.start())]),
            dot: 0,
            caller: None,
            trees: Vec::new(),
        }];
        let mut cursor = 0usize;
        loop {
            let top = stack.last_mut().expect("stack never empties");
            if top.dot >= top.rhs.len() {
                let done = stack.pop().expect("nonempty");
                match done.caller {
                    None => {
                        // Bottom frame finished.
                        return if cursor == word.len() {
                            done.trees.into_iter().next()
                        } else {
                            None
                        };
                    }
                    Some(x) => {
                        stack
                            .last_mut()
                            .expect("caller frame present")
                            .trees
                            .push(Tree::Node(x, done.trees));
                        continue;
                    }
                }
            }
            match top.rhs[top.dot] {
                Symbol::T(a) => match word.get(cursor) {
                    Some(t) if t.terminal() == a => {
                        top.trees.push(Tree::Leaf(t.clone()));
                        top.dot += 1;
                        cursor += 1;
                    }
                    _ => return None,
                },
                Symbol::Nt(x) => {
                    let pid = match word.get(cursor) {
                        Some(t) => self.table[x.index()].get(&t.terminal()).copied(),
                        None => self.eof_entry[x.index()],
                    }?;
                    top.dot += 1;
                    stack.push(Frame {
                        rhs: g.rhs_arc(pid),
                        dot: 0,
                        caller: Some(x),
                        trees: Vec::new(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::{check_tree, tokens, GrammarBuilder};

    fn expr_grammar() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("e", &["t", "e2"]);
        gb.rule("e2", &["Plus", "t", "e2"]);
        gb.rule("e2", &[]);
        gb.rule("t", &["Int"]);
        gb.rule("t", &["LParen", "e", "RParen"]);
        gb.start("e").build().unwrap()
    }

    #[test]
    fn generates_for_ll1_grammar() {
        assert!(Ll1Parser::generate(&expr_grammar()).is_ok());
    }

    #[test]
    fn parses_and_tree_checks() {
        let g = expr_grammar();
        let p = Ll1Parser::generate(&g).unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(
            &mut tab,
            &[
                ("LParen", "("),
                ("Int", "1"),
                ("Plus", "+"),
                ("Int", "2"),
                ("RParen", ")"),
                ("Plus", "+"),
                ("Int", "3"),
            ],
        );
        let tree = p.parse(&w).expect("valid expression");
        assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
    }

    #[test]
    fn rejects_invalid_words() {
        let g = expr_grammar();
        let p = Ll1Parser::generate(&g).unwrap();
        let mut tab = g.symbols().clone();
        for bad in [
            vec![("Plus", "+")],
            vec![("Int", "1"), ("Plus", "+")],
            vec![("Int", "1"), ("Int", "2")],
            vec![],
        ] {
            let w = tokens(&mut tab, &bad);
            assert!(p.parse(&w).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn first_first_conflict_detected() {
        // Both S alternatives start with a.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "b"]);
        gb.rule("S", &["a", "c"]);
        let g = gb.start("S").build().unwrap();
        let err = Ll1Parser::generate(&g).unwrap_err();
        assert_eq!(g.symbols().nonterminal_name(err.nonterminal), "S");
        assert!(err.lookahead.is_some());
    }

    #[test]
    fn first_follow_conflict_detected() {
        // A -> a | ε with FOLLOW(A) containing a.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "a"]);
        gb.rule("A", &["a"]);
        gb.rule("A", &[]);
        let g = gb.start("S").build().unwrap();
        assert!(Ll1Parser::generate(&g).is_err());
    }

    #[test]
    fn fig2_grammar_is_not_ll1() {
        // The paper's Fig. 2 grammar needs unbounded lookahead to decide
        // between S -> A c and S -> A d; LL(1) must reject it — exactly
        // the expressiveness gap ALL(*) closes.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        let g = gb.start("S").build().unwrap();
        assert!(Ll1Parser::generate(&g).is_err());
    }

    #[test]
    fn eof_conflict_detected() {
        // Two nullable alternatives: conflict at end-of-input.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A"]);
        gb.rule("A", &[]);
        gb.rule("A", &["A", "x"]); // also left-recursive, but LL(1) gen
                                   // fails first on the table conflict
        let g = gb.start("S").build().unwrap();
        assert!(Ll1Parser::generate(&g).is_err());
    }

    #[test]
    fn nullable_parse_at_eof() {
        let g = expr_grammar();
        let p = Ll1Parser::generate(&g).unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("Int", "7")]);
        let tree = p.parse(&w).unwrap();
        // e2 -> ε applied at end of input.
        assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
    }
}
