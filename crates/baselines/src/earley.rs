//! An Earley parser for arbitrary CFGs.
//!
//! The paper's related-work discussion (§7) contrasts CoStar with
//! verified *general* CFG parsers, which handle every grammar — including
//! ambiguous and left-recursive ones — at the cost of weaker performance
//! on the deterministic grammars practical applications need. This module
//! provides such a general parser as (a) an independent completeness
//! oracle for the test suites (it accepts exactly the words CoStar must
//! accept on non-left-recursive grammars) and (b) the "general CFG
//! parser" comparator in the evaluation harness.

use costar_grammar::analysis::NullableSet;
use costar_grammar::{Grammar, NonTerminal, ProdId, Symbol, Token, Tree};
use std::collections::{HashMap, HashSet};

/// An Earley item: `lhs → rhs[..dot] • rhs[dot..]`, started at `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    prod: u32,
    dot: u16,
    origin: u32,
}

/// The Earley chart for one input word (completed spans only; the raw
/// item sets are consumed during construction).
#[derive(Debug)]
pub struct Chart {
    /// For each `(nonterminal, origin)`, the set positions it completes at.
    spans: HashMap<(u32, u32), Vec<u32>>,
}

/// Builds the Earley chart for `word`.
fn build_chart(g: &Grammar, word: &[Token]) -> Chart {
    let n = word.len();
    let nullable = NullableSet::compute(g);
    let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n + 1];
    let mut seen: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];

    let add = |sets: &mut Vec<Vec<Item>>, seen: &mut Vec<HashSet<Item>>, k: usize, it: Item| {
        if seen[k].insert(it) {
            sets[k].push(it);
        }
    };

    for &pid in g.alternatives(g.start()) {
        add(
            &mut sets,
            &mut seen,
            0,
            Item {
                prod: pid.index() as u32,
                dot: 0,
                origin: 0,
            },
        );
    }

    for k in 0..=n {
        let mut i = 0;
        while i < sets[k].len() {
            let it = sets[k][i];
            i += 1;
            let rhs = g.production(ProdId::from_index(it.prod as usize)).rhs();
            if (it.dot as usize) < rhs.len() {
                match rhs[it.dot as usize] {
                    Symbol::Nt(y) => {
                        // Predict.
                        for &pid in g.alternatives(y) {
                            add(
                                &mut sets,
                                &mut seen,
                                k,
                                Item {
                                    prod: pid.index() as u32,
                                    dot: 0,
                                    origin: k as u32,
                                },
                            );
                        }
                        // Aycock–Horspool nullable fix: a plain
                        // completion pass misses items added to this set
                        // *after* the nullable's ε-completion ran, so
                        // advance over nullable nonterminals eagerly at
                        // prediction time.
                        if nullable.contains(y) {
                            add(
                                &mut sets,
                                &mut seen,
                                k,
                                Item {
                                    dot: it.dot + 1,
                                    ..it
                                },
                            );
                        }
                    }
                    Symbol::T(a) => {
                        // Scan.
                        if k < n && word[k].terminal() == a {
                            add(
                                &mut sets,
                                &mut seen,
                                k + 1,
                                Item {
                                    dot: it.dot + 1,
                                    ..it
                                },
                            );
                        }
                    }
                }
            } else {
                // Complete.
                let lhs = g.production(ProdId::from_index(it.prod as usize)).lhs();
                let origin = it.origin as usize;
                let mut j = 0;
                while j < sets[origin].len() {
                    let cand = sets[origin][j];
                    j += 1;
                    let crhs = g.production(ProdId::from_index(cand.prod as usize)).rhs();
                    if (cand.dot as usize) < crhs.len()
                        && crhs[cand.dot as usize] == Symbol::Nt(lhs)
                    {
                        add(
                            &mut sets,
                            &mut seen,
                            k,
                            Item {
                                dot: cand.dot + 1,
                                ..cand
                            },
                        );
                    }
                }
            }
        }
    }

    // Index completed spans for tree reconstruction.
    let mut spans: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    for (k, set) in sets.iter().enumerate() {
        for it in set {
            let p = g.production(ProdId::from_index(it.prod as usize));
            if it.dot as usize == p.rhs().len() {
                spans
                    .entry((p.lhs().index() as u32, it.origin))
                    .or_default()
                    .push(k as u32);
            }
        }
    }
    for v in spans.values_mut() {
        v.sort_unstable();
        v.dedup();
    }

    Chart { spans }
}

/// Does the grammar recognize `word`?
///
/// Unlike CoStar, this recognizer handles left-recursive and ambiguous
/// grammars — it is a decision procedure for *all* CFGs.
///
/// # Examples
///
/// ```
/// use costar_baselines::earley_recognize;
/// use costar_grammar::{GrammarBuilder, Token};
/// // A left-recursive grammar CoStar refuses.
/// let mut gb = GrammarBuilder::new();
/// gb.rule("E", &["E", "p", "i"]);
/// gb.rule("E", &["i"]);
/// let g = gb.start("E").build()?;
/// let t = |n: &str| Token::new(g.symbols().lookup_terminal(n).unwrap(), n);
/// assert!(earley_recognize(&g, &[t("i"), t("p"), t("i")]));
/// assert!(!earley_recognize(&g, &[t("p")]));
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
pub fn earley_recognize(g: &Grammar, word: &[Token]) -> bool {
    let chart = build_chart(g, word);
    chart
        .spans
        .get(&(g.start().index() as u32, 0))
        .is_some_and(|ks| ks.contains(&(word.len() as u32)))
}

/// Parses `word`, returning one parse tree if the word is in the
/// language (an arbitrary one if the word is ambiguous).
pub fn earley_parse(g: &Grammar, word: &[Token]) -> Option<Tree> {
    let chart = build_chart(g, word);
    if !chart
        .spans
        .get(&(g.start().index() as u32, 0))
        .is_some_and(|ks| ks.contains(&(word.len() as u32)))
    {
        return None;
    }
    let mut builder = TreeBuilder {
        g,
        word,
        chart: &chart,
        in_progress: HashSet::new(),
    };
    builder.build_nt(g.start(), 0, word.len())
}

/// Backtracking tree reconstruction over the chart.
///
/// A minimal parse tree never repeats a `(nonterminal, span)` pair along
/// one root-to-leaf path (a repeat could be excised), so the builder
/// tracks the path's in-progress pairs and skips them — this both
/// guarantees termination on unit cycles (`S → S`) and preserves
/// completeness: whenever the chart proves a derivation exists, a
/// repeat-free one exists and the backtracking search finds it.
struct TreeBuilder<'a> {
    g: &'a Grammar,
    word: &'a [Token],
    chart: &'a Chart,
    in_progress: HashSet<(u32, u32, u32)>,
}

impl TreeBuilder<'_> {
    fn derivable(&self, x: NonTerminal, i: usize, j: usize) -> bool {
        self.chart
            .spans
            .get(&(x.index() as u32, i as u32))
            .is_some_and(|ks| ks.binary_search(&(j as u32)).is_ok())
    }

    fn build_nt(&mut self, x: NonTerminal, i: usize, j: usize) -> Option<Tree> {
        let key = (x.index() as u32, i as u32, j as u32);
        if !self.in_progress.insert(key) {
            return None; // unit cycle: a repeat-free tree skips this path
        }
        let mut result = None;
        for &pid in self.g.alternatives(x) {
            if let Some(children) = self.build_seq(pid.index() as u32, 0, i, j) {
                result = Some(Tree::Node(x, children));
                break;
            }
        }
        self.in_progress.remove(&key);
        result
    }

    fn build_seq(&mut self, prod: u32, dot: u16, i: usize, j: usize) -> Option<Vec<Tree>> {
        let rhs = self
            .g
            .production(ProdId::from_index(prod as usize))
            .rhs_arc();
        if dot as usize == rhs.len() {
            return (i == j).then(Vec::new);
        }
        match rhs[dot as usize] {
            Symbol::T(a) => {
                if i < j && self.word[i].terminal() == a {
                    let mut rest = self.build_seq(prod, dot + 1, i + 1, j)?;
                    rest.insert(0, Tree::Leaf(self.word[i].clone()));
                    Some(rest)
                } else {
                    None
                }
            }
            Symbol::Nt(y) => {
                for k in i..=j {
                    if !self.derivable(y, i, k) {
                        continue;
                    }
                    // Backtrack across both the split point and the
                    // nonterminal's internal choices.
                    let Some(head) = self.build_nt(y, i, k) else {
                        continue;
                    };
                    if let Some(mut rest) = self.build_seq(prod, dot + 1, k, j) {
                        rest.insert(0, head);
                        return Some(rest);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::{check_tree, tokens, GrammarBuilder};

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn recognizes_fig2_language() {
        let g = fig2();
        let mut tab = g.symbols().clone();
        let yes = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let no = tokens(&mut tab, &[("a", "a"), ("c", "c")]);
        assert!(earley_recognize(&g, &yes));
        assert!(!earley_recognize(&g, &no));
        assert!(!earley_recognize(&g, &[]));
    }

    #[test]
    fn parses_and_tree_checks() {
        let g = fig2();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("b", "b"), ("c", "c")]);
        let tree = earley_parse(&g, &w).expect("in language");
        assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
        assert!(earley_parse(&g, &w[..1]).is_none());
    }

    #[test]
    fn handles_left_recursion() {
        let mut gb = GrammarBuilder::new();
        gb.rule("E", &["E", "p", "E"]);
        gb.rule("E", &["i"]);
        let g = gb.start("E").build().unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(
            &mut tab,
            &[("i", "i"), ("p", "p"), ("i", "i"), ("p", "p"), ("i", "i")],
        );
        assert!(earley_recognize(&g, &w));
        let tree = earley_parse(&g, &w).expect("in language");
        assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
    }

    #[test]
    fn handles_nullable_rules() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "B", "A"]);
        gb.rule("A", &[]);
        gb.rule("A", &["a"]);
        gb.rule("B", &["b"]);
        let g = gb.start("S").build().unwrap();
        let mut tab = g.symbols().clone();
        for word in [
            vec![("b", "b")],
            vec![("a", "a"), ("b", "b")],
            vec![("b", "b"), ("a", "a")],
            vec![("a", "a"), ("b", "b"), ("a", "a")],
        ] {
            let w = tokens(&mut tab, &word);
            assert!(earley_recognize(&g, &w), "{word:?}");
            let tree = earley_parse(&g, &w).unwrap();
            assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
        }
        let w = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("b", "b")]);
        assert!(!earley_recognize(&g, &w));
    }

    #[test]
    fn handles_unit_cycles() {
        // S -> S | a : reconstruction must not loop.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["S"]);
        gb.rule("S", &["a"]);
        let g = gb.start("S").build().unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("a", "a")]);
        assert!(earley_recognize(&g, &w));
        let tree = earley_parse(&g, &w).unwrap();
        assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
    }

    #[test]
    fn nullable_completion_ordering_regression() {
        // Found by the oracle-agreement property tests: N1's ε-completion
        // runs before the `N1 -> N0 . N1` item exists in the same set, so
        // a single completion pass misses it (the Aycock–Horspool case).
        let mut gb = GrammarBuilder::new();
        gb.rule("N0", &["t", "N1"]);
        gb.rule("N1", &[]);
        gb.rule("N1", &["N0", "N1"]);
        let g = gb.start("N0").build().unwrap();
        let mut tab = g.symbols().clone();
        for n in 1..=5 {
            let word = tokens(&mut tab, &vec![("t", "t"); n]);
            assert!(earley_recognize(&g, &word), "t^{n} is in the language");
            let tree = earley_parse(&g, &word).unwrap();
            assert!(check_tree(&g, g.start(), &word, &tree).is_ok());
        }
        assert!(!earley_recognize(&g, &[]));
    }

    #[test]
    fn empty_word_in_nullable_grammar() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A"]);
        gb.rule("A", &[]);
        let g = gb.start("S").build().unwrap();
        assert!(earley_recognize(&g, &[]));
        let tree = earley_parse(&g, &[]).unwrap();
        assert_eq!(tree.leaf_count(), 0);
    }

    #[test]
    fn ambiguous_input_yields_some_valid_tree() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["S", "S"]);
        gb.rule("S", &["a"]);
        let g = gb.start("S").build().unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("a", "a")]);
        let tree = earley_parse(&g, &w).unwrap();
        assert!(check_tree(&g, g.start(), &w, &tree).is_ok());
    }
}
