//! `AntlrSim`: an imperative, optimized ALL(*) interpreter.
//!
//! The paper's Fig. 10/11 measure CoStar against ANTLR 4's generated Java
//! parsers. We cannot run the JVM here, so this module is the substitute
//! comparator: the same ALL(*) algorithm, implemented the way an
//! unverified production parser would be —
//!
//! * mutable array-based stacks instead of persistent structures;
//! * a precomputed one-token *quick decision* row per nonterminal
//!   (standing in for ANTLR's compiled DFA decisions) used whenever the
//!   decision is one-token unambiguous;
//! * an SLL DFA cache that persists across inputs *by default* — the
//!   ANTLR policy whose warm-up effect the paper's Fig. 11 studies —
//!   with an opt-out per-input mode for the cold-cache arm of that
//!   experiment;
//! * no termination measure, no invariant checking, no purity.
//!
//! Its outcomes must agree with CoStar's on every input (checked by the
//! integration suites): same acceptance, same ambiguity labels.

use costar_grammar::analysis::{ll1_selects, GrammarAnalysis};
use costar_grammar::{Grammar, NonTerminal, NtSet, ProdId, Symbol, Terminal, Token, Tree};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of an `AntlrSim` parse, mirroring CoStar's result type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOutcome {
    /// Accepted with a unique parse tree.
    Unique(Tree),
    /// Accepted; the input is ambiguous.
    Ambig(Tree),
    /// Not in the language.
    Reject,
    /// Left recursion detected (the only error an ALL(*) interpreter can
    /// hit on a well-formed grammar).
    LeftRecursive(NonTerminal),
}

impl SimOutcome {
    /// The parse tree, if accepted.
    pub fn tree(&self) -> Option<&Tree> {
        match self {
            SimOutcome::Unique(t) | SimOutcome::Ambig(t) => Some(t),
            _ => None,
        }
    }

    /// `true` for accepted outcomes.
    pub fn is_accept(&self) -> bool {
        self.tree().is_some()
    }
}

/// One-token decision row for a nonterminal whose alternatives have
/// pairwise-disjoint LL(1) select sets.
#[derive(Debug, Clone, Default)]
struct QuickRow {
    by_term: HashMap<Terminal, ProdId>,
    at_eof: Option<ProdId>,
}

/// A simulated-stack frame: `(production, dot)`; `u32::MAX` marks the
/// machine's bottom pseudo-frame.
type SimFrame = (u32, u32);
const BOTTOM: u32 = u32::MAX;

/// A subparser configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum SpState {
    AcceptEof,
    Stack(Vec<SimFrame>),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Config {
    alt: u32,
    state: SpState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Ll,
    Sll,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Pred {
    Unique(ProdId),
    Ambig(ProdId),
    Reject,
    LeftRec(NonTerminal),
}

/// An interned DFA state: configs plus precomputed resolutions, so the
/// hot loop never re-derives them (ANTLR's accept-state marking).
#[derive(Debug)]
struct DfaState {
    configs: Arc<[Config]>,
    /// `Some` when the state already decides the prediction.
    resolution: Option<Pred>,
    /// What the state decides if input ends here.
    at_eof: Pred,
}

/// The persistent SLL DFA (ANTLR's cross-input cache).
#[derive(Debug, Default)]
struct SllDfa {
    states: Vec<DfaState>,
    intern: HashMap<Arc<[Config]>, u32>,
    starts: HashMap<NonTerminal, u32>,
    trans: HashMap<(u32, Terminal), u32>,
}

impl SllDfa {
    fn intern(&mut self, mut configs: Vec<Config>) -> u32 {
        configs.sort_unstable();
        configs.dedup();
        let key: Arc<[Config]> = configs.into();
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = self.states.len() as u32;
        self.states.push(DfaState {
            resolution: resolution(&key),
            at_eof: eof_resolution(&key),
            configs: Arc::clone(&key),
        });
        self.intern.insert(key, id);
        id
    }
}

/// Statistics for the Fig. 11 cache-warm-up experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCacheStats {
    /// Interned DFA states.
    pub states: usize,
    /// Recorded transitions.
    pub transitions: usize,
}

/// A machine-stack frame of the imperative parser.
#[derive(Debug)]
struct Frame {
    rhs: Arc<[Symbol]>,
    dot: usize,
    caller: Option<NonTerminal>,
    /// Production index, or BOTTOM for the start pseudo-frame — kept so
    /// prediction can mirror the machine stack cheaply.
    prod: u32,
    trees: Vec<Tree>,
}

/// The imperative ALL(*) parser.
///
/// # Examples
///
/// ```
/// use costar_baselines::{AntlrSim, SimOutcome};
/// use costar_grammar::{GrammarBuilder, Token};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["A", "c"]);
/// gb.rule("S", &["A", "d"]);
/// gb.rule("A", &["a", "A"]);
/// gb.rule("A", &["b"]);
/// let g = gb.start("S").build()?;
/// let mut sim = AntlrSim::new(g);
/// let t = |n: &str| Token::new(sim.grammar().symbols().lookup_terminal(n).unwrap(), n);
/// assert!(matches!(sim.parse(&[t("a"), t("b"), t("d")]), SimOutcome::Unique(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct AntlrSim {
    grammar: Grammar,
    analysis: GrammarAnalysis,
    quick: Vec<Option<QuickRow>>,
    dfa: SllDfa,
    persistent_cache: bool,
    /// Shared `[start]` right-hand side for the bottom pseudo-frame.
    bottom_rhs: Arc<[Symbol]>,
}

impl AntlrSim {
    /// Builds the simulator with ANTLR's default policy: the prediction
    /// cache persists across inputs.
    pub fn new(grammar: Grammar) -> Self {
        let analysis = GrammarAnalysis::compute(&grammar);
        let quick = build_quick_rows(&grammar, &analysis);
        let bottom_rhs: Arc<[Symbol]> = Arc::from([Symbol::Nt(grammar.start())]);
        AntlrSim {
            grammar,
            analysis,
            quick,
            dfa: SllDfa::default(),
            persistent_cache: true,
            bottom_rhs,
        }
    }

    /// Builds a simulator that clears its cache before every parse — the
    /// cold-cache arm of the paper's Fig. 11 experiment.
    pub fn with_cold_cache(grammar: Grammar) -> Self {
        let mut sim = AntlrSim::new(grammar);
        sim.persistent_cache = false;
        sim
    }

    /// The grammar being interpreted.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Cache size counters.
    pub fn cache_stats(&self) -> SimCacheStats {
        SimCacheStats {
            states: self.dfa.states.len(),
            transitions: self.dfa.trans.len(),
        }
    }

    /// Pre-warms the prediction cache by parsing the given inputs (used
    /// by the Fig. 11 "after cache warm-up" arm).
    pub fn warm_up(&mut self, words: &[Vec<Token>]) {
        let persistent = self.persistent_cache;
        self.persistent_cache = true;
        for w in words {
            let _ = self.parse(w);
        }
        self.persistent_cache = persistent;
    }

    /// Parses `word` from the grammar's start symbol.
    pub fn parse(&mut self, word: &[Token]) -> SimOutcome {
        if !self.persistent_cache {
            self.dfa = SllDfa::default();
        }
        let g = &self.grammar;
        let mut stack = vec![Frame {
            rhs: Arc::clone(&self.bottom_rhs),
            dot: 0,
            caller: None,
            prod: BOTTOM,
            trees: Vec::new(),
        }];
        let mut cursor = 0usize;
        let mut visited = NtSet::with_capacity(g.num_nonterminals());
        let mut unique = true;

        loop {
            let top = stack.last_mut().expect("stack never empties");
            if top.dot >= top.rhs.len() {
                let done = stack.pop().expect("nonempty");
                match done.caller {
                    None => {
                        return if cursor == word.len() {
                            let tree = done.trees.into_iter().next().expect("one tree");
                            if unique {
                                SimOutcome::Unique(tree)
                            } else {
                                SimOutcome::Ambig(tree)
                            }
                        } else {
                            SimOutcome::Reject
                        };
                    }
                    Some(x) => {
                        stack
                            .last_mut()
                            .expect("caller present")
                            .trees
                            .push(Tree::Node(x, done.trees));
                        visited.remove(x);
                        continue;
                    }
                }
            }
            match top.rhs[top.dot] {
                Symbol::T(a) => match word.get(cursor) {
                    Some(t) if t.terminal() == a => {
                        top.trees.push(Tree::Leaf(t.clone()));
                        top.dot += 1;
                        cursor += 1;
                        visited.clear();
                    }
                    _ => return SimOutcome::Reject,
                },
                Symbol::Nt(x) => {
                    if visited.contains(x) {
                        return SimOutcome::LeftRecursive(x);
                    }
                    let pred = self.predict(x, &stack, &word[cursor..]);
                    let (alt, ambig) = match pred {
                        Pred::Unique(alt) => (alt, false),
                        Pred::Ambig(alt) => (alt, true),
                        Pred::Reject => return SimOutcome::Reject,
                        Pred::LeftRec(y) => return SimOutcome::LeftRecursive(y),
                    };
                    if ambig {
                        unique = false;
                    }
                    let top = stack.last_mut().expect("nonempty");
                    top.dot += 1;
                    stack.push(Frame {
                        rhs: self.grammar.rhs_arc(alt),
                        dot: 0,
                        caller: Some(x),
                        prod: alt.index() as u32,
                        trees: Vec::new(),
                    });
                    visited.insert(x);
                }
            }
        }
    }

    /// `adaptivePredict`: quick one-token row, then cached SLL, then LL.
    /// The machine stack is only snapshotted if the LL failover runs —
    /// the common quick-row and SLL paths never touch it.
    fn predict(&mut self, x: NonTerminal, stack: &[Frame], rest: &[Token]) -> Pred {
        let alts = self.grammar.alternatives(x);
        match alts {
            [] => return Pred::Reject,
            [only] => return Pred::Unique(*only),
            _ => {}
        }
        if let Some(row) = &self.quick[x.index()] {
            return match rest.first() {
                Some(t) => match row.by_term.get(&t.terminal()) {
                    Some(&alt) => Pred::Unique(alt),
                    None => Pred::Reject,
                },
                None => match row.at_eof {
                    Some(alt) => Pred::Unique(alt),
                    None => Pred::Reject,
                },
            };
        }
        match self.sll_predict(x, rest) {
            Pred::Ambig(_) => {
                // SLL conflict: snapshot the machine stack (top dot
                // advanced past the decision nonterminal, matching push
                // semantics) and re-run with full context.
                let machine_stack: Vec<SimFrame> = stack
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        let dot = if i + 1 == stack.len() {
                            f.dot + 1
                        } else {
                            f.dot
                        } as u32;
                        (f.prod, dot)
                    })
                    .collect();
                self.ll_predict(x, &machine_stack, rest)
            }
            committed => committed,
        }
    }

    fn sll_predict(&mut self, x: NonTerminal, rest: &[Token]) -> Pred {
        let mut sid = match self.dfa.starts.get(&x) {
            Some(&id) => id,
            None => {
                let init = self.initial_configs(x, &[]);
                let configs = match self.closure(Mode::Sll, init) {
                    Ok(c) => c,
                    Err(y) => return Pred::LeftRec(y),
                };
                let id = self.dfa.intern(configs);
                self.dfa.starts.insert(x, id);
                id
            }
        };
        let mut input = rest.iter();
        loop {
            let state = &self.dfa.states[sid as usize];
            if let Some(p) = &state.resolution {
                return p.clone();
            }
            let Some(t) = input.next() else {
                return state.at_eof.clone();
            };
            let term = t.terminal();
            sid = match self.dfa.trans.get(&(sid, term)) {
                Some(&next) => next,
                None => {
                    let configs = Arc::clone(&state.configs);
                    let moved = self.move_configs(&configs, term);
                    let next_configs = match self.closure(Mode::Sll, moved) {
                        Ok(c) => c,
                        Err(y) => return Pred::LeftRec(y),
                    };
                    let next = self.dfa.intern(next_configs);
                    self.dfa.trans.insert((sid, term), next);
                    next
                }
            };
        }
    }

    fn ll_predict(&mut self, x: NonTerminal, machine_stack: &[SimFrame], rest: &[Token]) -> Pred {
        let init = self.initial_configs(x, machine_stack);
        let mut configs = match self.closure(Mode::Ll, init) {
            Ok(c) => c,
            Err(y) => return Pred::LeftRec(y),
        };
        let mut input = rest.iter();
        loop {
            if let Some(p) = resolution(&configs) {
                return p;
            }
            let Some(t) = input.next() else {
                return eof_resolution(&configs);
            };
            let moved = self.move_configs(&configs, t.terminal());
            configs = match self.closure(Mode::Ll, moved) {
                Ok(c) => c,
                Err(y) => return Pred::LeftRec(y),
            };
        }
    }

    fn initial_configs(&self, x: NonTerminal, base: &[SimFrame]) -> Vec<Config> {
        self.grammar
            .alternatives(x)
            .iter()
            .map(|&q| {
                let mut stack = base.to_vec();
                stack.push((q.index() as u32, 0));
                Config {
                    alt: q.index() as u32,
                    state: SpState::Stack(stack),
                }
            })
            .collect()
    }

    fn frame_syms(&self, frame: SimFrame) -> (Option<NonTerminal>, Arc<[Symbol]>) {
        if frame.0 == BOTTOM {
            (None, Arc::from([Symbol::Nt(self.grammar.start())]))
        } else {
            let pid = ProdId::from_index(frame.0 as usize);
            let p = self.grammar.production(pid);
            (Some(p.lhs()), p.rhs_arc())
        }
    }

    fn move_configs(&self, configs: &[Config], t: Terminal) -> Vec<Config> {
        let mut out = Vec::new();
        for c in configs {
            if let SpState::Stack(stack) = &c.state {
                let &frame = stack.last().expect("stable configs nonempty");
                let (_, rhs) = self.frame_syms(frame);
                if rhs.get(frame.1 as usize) == Some(&Symbol::T(t)) {
                    let mut next = stack.clone();
                    next.last_mut().expect("nonempty").1 += 1;
                    out.push(Config {
                        alt: c.alt,
                        state: SpState::Stack(next),
                    });
                }
            }
        }
        out
    }

    fn closure(&self, mode: Mode, configs: Vec<Config>) -> Result<Vec<Config>, NonTerminal> {
        use std::collections::HashSet;
        let mut out = Vec::new();
        let mut emitted: HashSet<Config> = HashSet::new();
        let mut explored: HashSet<Config> = HashSet::new();
        let mut work: Vec<(u32, Vec<SimFrame>, NtSet)> = Vec::new();
        for c in configs {
            match c.state {
                SpState::AcceptEof => {
                    if emitted.insert(c.clone()) {
                        out.push(c);
                    }
                }
                SpState::Stack(stack) => work.push((
                    c.alt,
                    stack,
                    NtSet::with_capacity(self.grammar.num_nonterminals()),
                )),
            }
        }
        while let Some((alt, mut stack, mut visited)) = work.pop() {
            let key = Config {
                alt,
                state: SpState::Stack(stack.clone()),
            };
            if !explored.insert(key) {
                continue;
            }
            let &frame = stack.last().expect("worklist stacks nonempty");
            let (lhs, rhs) = self.frame_syms(frame);
            match rhs.get(frame.1 as usize) {
                Some(Symbol::T(_)) => {
                    let c = Config {
                        alt,
                        state: SpState::Stack(stack),
                    };
                    if emitted.insert(c.clone()) {
                        out.push(c);
                    }
                }
                Some(Symbol::Nt(y)) => {
                    let y = *y;
                    if visited.contains(y) {
                        return Err(y);
                    }
                    visited.insert(y);
                    // Advance the caller's dot past y (push semantics).
                    stack.last_mut().expect("nonempty").1 += 1;
                    for &q in self.grammar.alternatives(y) {
                        let mut pushed = stack.clone();
                        pushed.push((q.index() as u32, 0));
                        work.push((alt, pushed, visited.clone()));
                    }
                }
                None => {
                    // Exhausted frame: simulated return.
                    stack.pop();
                    if let Some(x) = lhs {
                        visited.remove(x);
                    }
                    if !stack.is_empty() {
                        work.push((alt, stack, visited));
                    } else {
                        match mode {
                            Mode::Ll => {
                                let c = Config {
                                    alt,
                                    state: SpState::AcceptEof,
                                };
                                if emitted.insert(c.clone()) {
                                    out.push(c);
                                }
                            }
                            Mode::Sll => {
                                let x = lhs.expect("SLL stacks hold production frames");
                                let dests = self.analysis.stable_frames.dests(x);
                                for pos in &dests.positions {
                                    let c = Config {
                                        alt,
                                        state: SpState::Stack(vec![(
                                            pos.production.index() as u32,
                                            pos.dot,
                                        )]),
                                    };
                                    if emitted.insert(c.clone()) {
                                        out.push(c);
                                    }
                                }
                                if dests.can_end {
                                    let c = Config {
                                        alt,
                                        state: SpState::AcceptEof,
                                    };
                                    if emitted.insert(c.clone()) {
                                        out.push(c);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

fn distinct_alts(configs: &[Config]) -> Vec<u32> {
    let mut alts: Vec<u32> = configs.iter().map(|c| c.alt).collect();
    alts.sort_unstable();
    alts.dedup();
    alts
}

fn resolution(configs: &[Config]) -> Option<Pred> {
    match distinct_alts(configs).as_slice() {
        [] => Some(Pred::Reject),
        [only] => Some(Pred::Unique(ProdId::from_index(*only as usize))),
        _ => None,
    }
}

fn eof_resolution(configs: &[Config]) -> Pred {
    let eof: Vec<u32> = {
        let mut v: Vec<u32> = configs
            .iter()
            .filter(|c| matches!(c.state, SpState::AcceptEof))
            .map(|c| c.alt)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    match eof.as_slice() {
        [] => Pred::Reject,
        [only] => Pred::Unique(ProdId::from_index(*only as usize)),
        [first, ..] => Pred::Ambig(ProdId::from_index(*first as usize)),
    }
}

/// Builds the one-token quick-decision rows: a row exists for `x` iff its
/// alternatives' LL(1) select sets (FIRST plus FOLLOW-if-nullable) are
/// pairwise disjoint.
fn build_quick_rows(g: &Grammar, an: &GrammarAnalysis) -> Vec<Option<QuickRow>> {
    let mut rows: Vec<Option<QuickRow>> = Vec::with_capacity(g.num_nonterminals());
    for x in g.symbols().nonterminals() {
        let alts = g.alternatives(x);
        if alts.len() < 2 {
            rows.push(None);
            continue;
        }
        let mut row = QuickRow::default();
        let mut ok = true;
        'build: for &pid in alts {
            let rhs = g.production(pid).rhs();
            for t in g.symbols().terminals() {
                if ll1_selects(rhs, t, &an.nullable, &an.first, an.follow.follow(x))
                    && row.by_term.insert(t, pid).is_some()
                {
                    ok = false;
                    break 'build;
                }
            }
            if an.nullable.form_nullable(rhs)
                && an.follow.eof_follows(x)
                && row.at_eof.replace(pid).is_some()
            {
                ok = false;
                break 'build;
            }
        }
        rows.push(if ok { Some(row) } else { None });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::{check_tree, tokens, GrammarBuilder};

    fn fig2() -> Grammar {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "c"]);
        gb.rule("S", &["A", "d"]);
        gb.rule("A", &["a", "A"]);
        gb.rule("A", &["b"]);
        gb.start("S").build().unwrap()
    }

    #[test]
    fn parses_fig2() {
        let g = fig2();
        let mut sim = AntlrSim::new(g);
        let mut tab = sim.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        let SimOutcome::Unique(tree) = sim.parse(&w) else {
            panic!("expected unique accept")
        };
        assert!(check_tree(sim.grammar(), sim.grammar().start(), &w, &tree).is_ok());
        let bad = tokens(&mut tab, &[("a", "a"), ("c", "c")]);
        assert_eq!(sim.parse(&bad), SimOutcome::Reject);
    }

    #[test]
    fn quick_rows_cover_ll1_decisions() {
        // A is LL(1)-decidable (a vs b); S is not (needs full lookahead).
        let g = fig2();
        let an = GrammarAnalysis::compute(&g);
        let rows = build_quick_rows(&g, &an);
        let s = g.symbols().lookup_nonterminal("S").unwrap();
        let a = g.symbols().lookup_nonterminal("A").unwrap();
        assert!(rows[s.index()].is_none());
        assert!(rows[a.index()].is_some());
    }

    #[test]
    fn ambiguity_detected() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["X"]);
        gb.rule("S", &["Y"]);
        gb.rule("X", &["a"]);
        gb.rule("Y", &["a"]);
        let g = gb.start("S").build().unwrap();
        let mut sim = AntlrSim::new(g);
        let mut tab = sim.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a")]);
        assert!(matches!(sim.parse(&w), SimOutcome::Ambig(_)));
    }

    #[test]
    fn left_recursion_detected() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["E"]);
        gb.rule("E", &["E", "x"]);
        let g = gb.start("E").build().unwrap();
        let mut sim = AntlrSim::new(g);
        let mut tab = sim.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("x", "x")]);
        assert!(matches!(sim.parse(&w), SimOutcome::LeftRecursive(_)));
    }

    #[test]
    fn persistent_cache_grows_once() {
        let g = fig2();
        let mut sim = AntlrSim::new(g);
        let mut tab = sim.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("a", "a"), ("b", "b"), ("c", "c")]);
        sim.parse(&w);
        let first = sim.cache_stats();
        sim.parse(&w);
        assert_eq!(sim.cache_stats(), first, "warm cache stays fixed");
        let mut cold = AntlrSim::with_cold_cache(fig2());
        let mut tab = cold.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        cold.parse(&w);
        assert!(cold.cache_stats().states > 0);
        cold.parse(&[]);
        // Cold mode rebuilt from scratch; the empty parse needs fewer
        // states than the previous one had.
        assert!(cold.cache_stats().states <= 2);
    }

    #[test]
    fn sll_conflict_failover_matches_costar_semantics() {
        // The same grammar as the costar-core failover test.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["p", "C1"]);
        gb.rule("S", &["q", "C2"]);
        gb.rule("C1", &["X", "b"]);
        gb.rule("C2", &["X", "a", "b"]);
        gb.rule("X", &["a", "a"]);
        gb.rule("X", &["a"]);
        let g = gb.start("S").build().unwrap();
        let mut sim = AntlrSim::new(g);
        let mut tab = sim.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("q", "q"), ("a", "a"), ("a", "a"), ("b", "b")]);
        let SimOutcome::Unique(tree) = sim.parse(&w) else {
            panic!("expected unique accept")
        };
        assert!(check_tree(sim.grammar(), sim.grammar().start(), &w, &tree).is_ok());
    }

    #[test]
    fn warm_up_prepopulates_cache() {
        let g = fig2();
        let mut sim = AntlrSim::new(g);
        let mut tab = sim.grammar().symbols().clone();
        let w = tokens(&mut tab, &[("a", "a"), ("b", "b"), ("d", "d")]);
        sim.warm_up(std::slice::from_ref(&w));
        let warmed = sim.cache_stats();
        assert!(warmed.states > 0);
        sim.parse(&w);
        assert_eq!(sim.cache_stats(), warmed);
    }
}
