//! Chomsky normal form transformation.
//!
//! The paper's related work (§7) covers Firsov and Uustalu's certified
//! CYK parser, which "operates on CFGs in Chomsky normal form", paired
//! with their later certified CNF normalization — together a verified
//! parser for arbitrary CFGs. This module is that pipeline's first half:
//! the classic START/TERM/BIN/DEL/UNIT transformation. Combined with
//! [`crate::cyk_recognize`] it yields a third independent membership
//! oracle (after Earley and the derivation-counting DP) used by the
//! cross-validation test suites.
//!
//! Only the *language* is preserved (trees are not mapped back), which
//! is all a recognition oracle needs.

use costar_grammar::{Grammar, Symbol, Terminal};
use std::collections::{HashMap, HashSet};

/// A grammar in Chomsky normal form over dense internal symbol ids.
#[derive(Debug, Clone)]
pub struct CnfGrammar {
    /// Number of CNF variables.
    pub(crate) num_vars: usize,
    /// The start variable.
    pub(crate) start: usize,
    /// `true` if the empty word is in the language.
    pub(crate) nullable_start: bool,
    /// Terminal rules `A → a`, grouped by terminal index.
    pub(crate) by_terminal: HashMap<u32, Vec<usize>>,
    /// Binary rules `A → B C`.
    pub(crate) binary: Vec<(usize, usize, usize)>,
}

impl CnfGrammar {
    /// Number of binary rules (size diagnostic).
    pub fn num_binary_rules(&self) -> usize {
        self.binary.len()
    }

    /// Is the empty word in the language?
    pub fn accepts_empty(&self) -> bool {
        self.nullable_start
    }
}

/// Intermediate rule form: symbols are either variables (usize) or
/// terminals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum S {
    V(usize),
    T(u32),
}

/// Converts a grammar to Chomsky normal form.
///
/// # Examples
///
/// ```
/// use costar_baselines::to_cnf;
/// use costar_grammar::GrammarBuilder;
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a", "S", "b"]);
/// gb.rule("S", &[]);
/// let g = gb.start("S").build()?;
/// let cnf = to_cnf(&g);
/// assert!(cnf.accepts_empty());
/// assert!(cnf.num_binary_rules() > 0);
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
pub fn to_cnf(g: &Grammar) -> CnfGrammar {
    let num_nts = g.num_nonterminals();
    // Variables 0..num_nts are the original nonterminals; fresh ones
    // follow.
    let mut next_var = num_nts;
    let mut fresh = || {
        let v = next_var;
        next_var += 1;
        v
    };

    // START: a fresh start variable (so the old start may appear on
    // right-hand sides even when ε is in the language).
    let start = fresh();
    let mut rules: Vec<(usize, Vec<S>)> = vec![(start, vec![S::V(g.start().index())])];
    for (_, p) in g.iter() {
        let rhs = p
            .rhs()
            .iter()
            .map(|&s| match s {
                Symbol::Nt(x) => S::V(x.index()),
                Symbol::T(t) => S::T(t.index() as u32),
            })
            .collect();
        rules.push((p.lhs().index(), rhs));
    }

    // TERM: replace terminals in rules of length ≥ 2 with proxy
    // variables.
    let mut term_proxy: HashMap<u32, usize> = HashMap::new();
    for (_, rhs) in &mut rules {
        if rhs.len() >= 2 {
            for s in rhs.iter_mut() {
                if let S::T(t) = *s {
                    let v = *term_proxy.entry(t).or_insert_with(&mut fresh);
                    *s = S::V(v);
                }
            }
        }
    }
    for (&t, &v) in &term_proxy {
        rules.push((v, vec![S::T(t)]));
    }

    // BIN: binarize long rules.
    let mut binarized: Vec<(usize, Vec<S>)> = Vec::with_capacity(rules.len());
    for (lhs, rhs) in rules {
        if rhs.len() <= 2 {
            binarized.push((lhs, rhs));
            continue;
        }
        // lhs → s0 R1, R1 → s1 R2, ..., R_{k-2} → s_{k-2} s_{k-1}.
        let mut cur = lhs;
        for sym in &rhs[..rhs.len() - 2] {
            let cont = fresh();
            binarized.push((cur, vec![sym.clone(), S::V(cont)]));
            cur = cont;
        }
        binarized.push((
            cur,
            vec![rhs[rhs.len() - 2].clone(), rhs[rhs.len() - 1].clone()],
        ));
    }
    let rules = binarized;

    // DEL: compute nullable variables, then expand binary rules over
    // nullable positions and drop ε-rules (remember start nullability).
    let mut nullable: HashSet<usize> = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for (lhs, rhs) in &rules {
            if nullable.contains(lhs) {
                continue;
            }
            let all = rhs.iter().all(|s| match s {
                S::V(v) => nullable.contains(v),
                S::T(_) => false,
            });
            if all {
                nullable.insert(*lhs);
                changed = true;
            }
        }
    }
    let nullable_start = nullable.contains(&start);
    let mut expanded: HashSet<(usize, Vec<S>)> = HashSet::new();
    for (lhs, rhs) in &rules {
        match rhs.len() {
            0 => {}
            1 => {
                expanded.insert((*lhs, rhs.clone()));
            }
            2 => {
                expanded.insert((*lhs, rhs.clone()));
                for drop_idx in 0..2 {
                    if let S::V(v) = &rhs[drop_idx] {
                        if nullable.contains(v) {
                            expanded.insert((*lhs, vec![rhs[1 - drop_idx].clone()]));
                        }
                    }
                }
            }
            _ => unreachable!("binarized"),
        }
    }

    // UNIT: close over unit chains A →* B, attaching B's non-unit rules
    // to A.
    let mut unit_edges: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut proper: Vec<(usize, Vec<S>)> = Vec::new();
    for (lhs, rhs) in expanded {
        match rhs.as_slice() {
            [S::V(v)] => unit_edges.entry(lhs).or_default().push(*v),
            _ => proper.push((lhs, rhs)),
        }
    }
    // Unit-reachability per variable (BFS; variable count is small).
    let mut unit_reach: HashMap<usize, HashSet<usize>> = HashMap::new();
    for &v in unit_edges.keys() {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut work = vec![v];
        while let Some(u) = work.pop() {
            for &w in unit_edges.get(&u).into_iter().flatten() {
                if seen.insert(w) {
                    work.push(w);
                }
            }
        }
        unit_reach.insert(v, seen);
    }

    let mut by_terminal: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut binary: Vec<(usize, usize, usize)> = Vec::new();
    let mut seen_bin: HashSet<(usize, usize, usize)> = HashSet::new();
    let mut seen_term: HashSet<(usize, u32)> = HashSet::new();
    let add = |lhs: usize,
               rhs: &[S],
               by_terminal: &mut HashMap<u32, Vec<usize>>,
               binary: &mut Vec<(usize, usize, usize)>,
               seen_bin: &mut HashSet<(usize, usize, usize)>,
               seen_term: &mut HashSet<(usize, u32)>| {
        match rhs {
            [S::T(t)] => {
                if seen_term.insert((lhs, *t)) {
                    by_terminal.entry(*t).or_default().push(lhs);
                }
            }
            [S::V(a), S::V(b)] => {
                if seen_bin.insert((lhs, *a, *b)) {
                    binary.push((lhs, *a, *b));
                }
            }
            [S::T(_), _] | [_, S::T(_)] => unreachable!("TERM removed mixed rules"),
            _ => unreachable!("CNF shapes only"),
        }
    };
    for (lhs, rhs) in &proper {
        add(
            *lhs,
            rhs,
            &mut by_terminal,
            &mut binary,
            &mut seen_bin,
            &mut seen_term,
        );
    }
    for (from, reach) in &unit_reach {
        for to in reach {
            for (lhs, rhs) in &proper {
                if lhs == to {
                    add(
                        *from,
                        rhs,
                        &mut by_terminal,
                        &mut binary,
                        &mut seen_bin,
                        &mut seen_term,
                    );
                }
            }
        }
    }

    CnfGrammar {
        num_vars: next_var,
        start,
        nullable_start,
        by_terminal,
        binary,
    }
}

/// CYK recognition over a CNF grammar: is `word` (given as terminals) in
/// the language? O(n³·|rules|) time, O(n²·|vars|) space.
///
/// # Examples
///
/// ```
/// use costar_baselines::{cyk_recognize, to_cnf};
/// use costar_grammar::GrammarBuilder;
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["a", "S", "b"]);
/// gb.rule("S", &["a", "b"]);
/// let g = gb.start("S").build()?;
/// let cnf = to_cnf(&g);
/// let a = g.symbols().lookup_terminal("a").unwrap();
/// let b = g.symbols().lookup_terminal("b").unwrap();
/// assert!(cyk_recognize(&cnf, &[a, a, b, b]));
/// assert!(!cyk_recognize(&cnf, &[a, b, b]));
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
pub fn cyk_recognize(cnf: &CnfGrammar, word: &[Terminal]) -> bool {
    let n = word.len();
    if n == 0 {
        return cnf.nullable_start;
    }
    let vars = cnf.num_vars;
    // table[i][len-1] = bitset of variables deriving word[i..i+len].
    let words_per_set = vars.div_ceil(64);
    let idx = |i: usize, len: usize| (i * n + (len - 1)) * words_per_set;
    let mut table = vec![0u64; n * n * words_per_set];
    let set = |t: &mut [u64], base: usize, v: usize| {
        t[base + v / 64] |= 1 << (v % 64);
    };
    let get = |t: &[u64], base: usize, v: usize| t[base + v / 64] & (1 << (v % 64)) != 0;

    for (i, t) in word.iter().enumerate() {
        if let Some(vs) = cnf.by_terminal.get(&(t.index() as u32)) {
            let base = idx(i, 1);
            for &v in vs {
                set(&mut table, base, v);
            }
        }
    }
    for len in 2..=n {
        for i in 0..=n - len {
            let base = idx(i, len);
            for split in 1..len {
                let left = idx(i, split);
                let right = idx(i + split, len - split);
                for &(a, b, c) in &cnf.binary {
                    if !get(&table, base, a) && get(&table, left, b) && get(&table, right, c) {
                        set(&mut table, base, a);
                    }
                }
            }
        }
    }
    get(&table, idx(0, n), cnf.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::GrammarBuilder;

    fn terminals(g: &Grammar, names: &[&str]) -> Vec<Terminal> {
        names
            .iter()
            .map(|n| g.symbols().lookup_terminal(n).unwrap())
            .collect()
    }

    #[test]
    fn balanced_parens() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["a", "S", "b", "S"]);
        gb.rule("S", &[]);
        let g = gb.start("S").build().unwrap();
        let cnf = to_cnf(&g);
        assert!(cnf.accepts_empty());
        for (word, expect) in [
            (vec!["a", "b"], true),
            (vec!["a", "a", "b", "b"], true),
            (vec!["a", "b", "a", "b"], true),
            (vec!["a", "a", "b"], false),
            (vec!["b", "a"], false),
        ] {
            assert_eq!(
                cyk_recognize(&cnf, &terminals(&g, &word)),
                expect,
                "{word:?}"
            );
        }
    }

    #[test]
    fn unit_chains_resolved() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A"]);
        gb.rule("A", &["B"]);
        gb.rule("B", &["x"]);
        let g = gb.start("S").build().unwrap();
        let cnf = to_cnf(&g);
        assert!(cyk_recognize(&cnf, &terminals(&g, &["x"])));
        assert!(!cyk_recognize(&cnf, &terminals(&g, &["x", "x"])));
        assert!(!cnf.accepts_empty());
    }

    #[test]
    fn nullable_interleavings() {
        // S -> A b A ; A -> ε | a.
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["A", "b", "A"]);
        gb.rule("A", &[]);
        gb.rule("A", &["a"]);
        let g = gb.start("S").build().unwrap();
        let cnf = to_cnf(&g);
        for (word, expect) in [
            (vec!["b"], true),
            (vec!["a", "b"], true),
            (vec!["b", "a"], true),
            (vec!["a", "b", "a"], true),
            (vec!["a", "a", "b"], false),
            (vec![], false),
        ] {
            assert_eq!(
                cyk_recognize(&cnf, &terminals(&g, &word)),
                expect,
                "{word:?}"
            );
        }
    }

    #[test]
    fn left_recursive_grammars_work() {
        // CYK has no trouble with left recursion.
        let mut gb = GrammarBuilder::new();
        gb.rule("E", &["E", "p", "E"]);
        gb.rule("E", &["i"]);
        let g = gb.start("E").build().unwrap();
        let cnf = to_cnf(&g);
        assert!(cyk_recognize(&cnf, &terminals(&g, &["i"])));
        assert!(cyk_recognize(&cnf, &terminals(&g, &["i", "p", "i"])));
        assert!(!cyk_recognize(&cnf, &terminals(&g, &["i", "p"])));
    }

    #[test]
    fn unit_cycles_terminate() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["S"]);
        gb.rule("S", &["a"]);
        let g = gb.start("S").build().unwrap();
        let cnf = to_cnf(&g);
        assert!(cyk_recognize(&cnf, &terminals(&g, &["a"])));
        assert!(!cnf.accepts_empty());
    }

    #[test]
    fn empty_language_start() {
        let mut gb = GrammarBuilder::new();
        gb.rule("S", &["S", "a"]); // unproductive
        let g = gb.start("S").build().unwrap();
        let cnf = to_cnf(&g);
        assert!(!cyk_recognize(&cnf, &terminals(&g, &["a"])));
        assert!(!cnf.accepts_empty());
    }
}
