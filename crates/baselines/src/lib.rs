//! # costar-baselines — comparator parsers for the CoStar evaluation
//!
//! The paper positions CoStar against three families of prior work (§7)
//! and measures it against ANTLR (§6.2). This crate implements a
//! representative of each, all over the shared `costar-grammar`
//! substrate:
//!
//! * [`earley_recognize`] / [`earley_parse`] — a general-CFG Earley
//!   parser: handles *every* grammar (ambiguous, left-recursive), the
//!   class of verified general parsers CoStar is contrasted with, and an
//!   independent membership oracle for the test suites;
//! * [`count_trees`] — a saturating derivation-counting oracle that
//!   decides whether a word has zero, one, or many parse trees — the
//!   ground truth for CoStar's `Unique`/`Ambig` labels;
//! * [`to_cnf`] / [`cyk_recognize`] — Chomsky-normal-form conversion and
//!   CYK recognition, the Firsov–Uustalu certified-parsing pipeline of
//!   §7, here a third independent membership oracle;
//! * [`Ll1Parser`] — the LL(1) parser generator of Lasser et al. (ITP
//!   2019), CoStar's predecessor: fails on non-LL(1) grammars like the
//!   paper's XML grammar, demonstrating the expressiveness gap;
//! * [`AntlrSim`] — an imperative, optimized ALL(*) interpreter with a
//!   persistent cross-input prediction cache: the stand-in for the ANTLR
//!   parsers of the paper's Fig. 10/11.

#![warn(missing_docs)]

mod antlr_sim;
mod cnf;
mod earley;
mod ll1;
mod oracle;

pub use antlr_sim::{AntlrSim, SimCacheStats, SimOutcome};
pub use cnf::{cyk_recognize, to_cnf, CnfGrammar};
pub use earley::{earley_parse, earley_recognize};
pub use ll1::{Ll1Conflict, Ll1Parser};
pub use oracle::{count_trees, TreeCount};
