//! Ground-truth ambiguity oracle: saturating derivation counting.
//!
//! CoStar's correctness claims distinguish *unique* words (exactly one
//! parse tree), *ambiguous* words (at least two), and non-members. To
//! validate the parser's `Unique`/`Ambig` labels (paper Theorems 5.1,
//! 5.6, 5.11, 5.12) we need an independent judge of which case holds.
//! This module counts parse trees with a memoized dynamic program,
//! saturating at "two or more" — distinguishing 0 / 1 / many is all the
//! specification needs.
//!
//! Cyclic unit derivations (`A ⇒⁺ A` over the same span) yield infinitely
//! many trees; the DP detects in-progress revisits and classifies any
//! completable derivation that can absorb such a cycle as ambiguous.

use costar_grammar::{Grammar, NonTerminal, Symbol, Token};
use std::collections::HashMap;

/// How many parse trees a word has (saturated at two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeCount {
    /// Not in the language.
    Zero,
    /// Exactly one parse tree.
    One,
    /// Two or more (possibly infinitely many) parse trees.
    Many,
}

impl TreeCount {
    /// Is the word in the language?
    pub fn is_member(self) -> bool {
        !matches!(self, TreeCount::Zero)
    }
}

/// Saturating count with a cycle flag: `cyclic` records that some
/// derivation path re-entered the same (symbol, span) while it was being
/// counted — evidence of a unit cycle whose presence turns any positive
/// count into infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Count {
    n: u8, // saturating at 2
    cyclic: bool,
}

impl Count {
    const ZERO: Count = Count {
        n: 0,
        cyclic: false,
    };

    fn add(self, other: Count) -> Count {
        Count {
            n: (self.n + other.n).min(2),
            cyclic: self.cyclic || other.cyclic,
        }
    }

    fn mul(self, other: Count) -> Count {
        Count {
            n: (self.n * other.n).min(2),
            // A cycle matters only if the other factor is completable.
            cyclic: (self.cyclic && other.n > 0) || (other.cyclic && self.n > 0),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NtKey(u32, usize, usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SeqKey(u32, usize, usize, usize);

#[derive(Debug, Clone, Copy)]
enum Memo {
    InProgress,
    Done(Count),
}

struct Counter<'a> {
    g: &'a Grammar,
    word: &'a [Token],
    nt_memo: HashMap<NtKey, Memo>,
    seq_memo: HashMap<SeqKey, Count>,
}

impl Counter<'_> {
    fn count_nt(&mut self, x: NonTerminal, i: usize, j: usize) -> Count {
        let key = NtKey(x.index() as u32, i, j);
        match self.nt_memo.get(&key) {
            Some(Memo::Done(c)) => return *c,
            Some(Memo::InProgress) => {
                // Unit cycle over the same span: contributes no finite
                // trees itself, but flags potential infinity.
                return Count { n: 0, cyclic: true };
            }
            None => {}
        }
        self.nt_memo.insert(key, Memo::InProgress);
        let mut total = Count::ZERO;
        for &pid in self.g.alternatives(x) {
            let c = self.count_seq(pid.index() as u32, 0, i, j);
            total = total.add(c);
        }
        self.nt_memo.insert(key, Memo::Done(total));
        total
    }

    fn count_seq(&mut self, prod: u32, dot: usize, i: usize, j: usize) -> Count {
        let rhs = self
            .g
            .production(costar_grammar::ProdId::from_index(prod as usize))
            .rhs();
        if dot == rhs.len() {
            return if i == j {
                Count {
                    n: 1,
                    cyclic: false,
                }
            } else {
                Count::ZERO
            };
        }
        let key = SeqKey(prod, dot, i, j);
        if let Some(&c) = self.seq_memo.get(&key) {
            return c;
        }
        // Conservative placeholder to cut re-entrancy through identical
        // sequence states (possible via nullable cycles).
        self.seq_memo.insert(key, Count::ZERO);
        let mut total = Count::ZERO;
        match rhs[dot] {
            Symbol::T(a) => {
                if i < j && self.word[i].terminal() == a {
                    total = self.count_seq(prod, dot + 1, i + 1, j);
                }
            }
            Symbol::Nt(y) => {
                for k in i..=j {
                    let head = self.count_nt(y, i, k);
                    if head.n == 0 && !head.cyclic {
                        continue;
                    }
                    let tail = self.count_seq(prod, dot + 1, k, j);
                    total = total.add(head.mul(tail));
                }
            }
        }
        self.seq_memo.insert(key, total);
        total
    }
}

/// Counts the parse trees of `word` rooted at the grammar's start symbol.
///
/// # Examples
///
/// ```
/// use costar_baselines::{count_trees, TreeCount};
/// use costar_grammar::{GrammarBuilder, Token};
/// let mut gb = GrammarBuilder::new();
/// gb.rule("S", &["X"]);
/// gb.rule("S", &["Y"]);
/// gb.rule("X", &["a"]);
/// gb.rule("Y", &["a"]);
/// let g = gb.start("S").build()?;
/// let a = g.symbols().lookup_terminal("a").unwrap();
/// assert_eq!(count_trees(&g, &[Token::new(a, "a")]), TreeCount::Many);
/// assert_eq!(count_trees(&g, &[]), TreeCount::Zero);
/// # Ok::<(), costar_grammar::GrammarError>(())
/// ```
pub fn count_trees(g: &Grammar, word: &[Token]) -> TreeCount {
    let mut counter = Counter {
        g,
        word,
        nt_memo: HashMap::new(),
        seq_memo: HashMap::new(),
    };
    let c = counter.count_nt(g.start(), 0, word.len());
    match (c.n, c.cyclic) {
        (0, _) => TreeCount::Zero,
        (1, false) => TreeCount::One,
        // A completable derivation plus a reachable unit cycle means
        // infinitely many trees.
        _ => TreeCount::Many,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar_grammar::{tokens, GrammarBuilder};

    fn count(build: impl FnOnce(&mut GrammarBuilder), word: &[(&str, &str)]) -> TreeCount {
        let mut gb = GrammarBuilder::new();
        build(&mut gb);
        let g = gb.build().unwrap();
        let mut tab = g.symbols().clone();
        let w = tokens(&mut tab, word);
        count_trees(&g, &w)
    }

    #[test]
    fn unambiguous_grammar_counts_one() {
        let fig2 = |gb: &mut GrammarBuilder| {
            gb.rule("S", &["A", "c"]);
            gb.rule("S", &["A", "d"]);
            gb.rule("A", &["a", "A"]);
            gb.rule("A", &["b"]);
            gb.start("S");
        };
        assert_eq!(
            count(fig2, &[("a", "a"), ("b", "b"), ("d", "d")]),
            TreeCount::One
        );
        assert_eq!(count(fig2, &[("b", "b"), ("c", "c")]), TreeCount::One);
        assert_eq!(count(fig2, &[("a", "a")]), TreeCount::Zero);
    }

    #[test]
    fn fig6_grammar_is_ambiguous() {
        assert_eq!(
            count(
                |gb| {
                    gb.rule("S", &["X"]);
                    gb.rule("S", &["Y"]);
                    gb.rule("X", &["a"]);
                    gb.rule("Y", &["a"]);
                    gb.start("S");
                },
                &[("a", "a")]
            ),
            TreeCount::Many
        );
    }

    #[test]
    fn dangling_else_style_ambiguity() {
        // S -> S S | a : "aaa" has two association trees.
        let g = |gb: &mut GrammarBuilder| {
            gb.rule("S", &["S", "S"]);
            gb.rule("S", &["a"]);
            gb.start("S");
        };
        assert_eq!(count(g, &[("a", "a")]), TreeCount::One);
        assert_eq!(count(g, &[("a", "a"), ("a", "a")]), TreeCount::One);
        assert_eq!(
            count(g, &[("a", "a"), ("a", "a"), ("a", "a")]),
            TreeCount::Many
        );
    }

    #[test]
    fn unit_cycle_means_infinitely_many() {
        // S -> S | a : every "a" has infinitely many trees.
        let g = |gb: &mut GrammarBuilder| {
            gb.rule("S", &["S"]);
            gb.rule("S", &["a"]);
            gb.start("S");
        };
        assert_eq!(count(g, &[("a", "a")]), TreeCount::Many);
        assert_eq!(count(g, &[]), TreeCount::Zero);
    }

    #[test]
    fn nullable_grammar_counts() {
        let g = |gb: &mut GrammarBuilder| {
            gb.rule("S", &["A", "B"]);
            gb.rule("A", &[]);
            gb.rule("A", &["a"]);
            gb.rule("B", &["b"]);
            gb.start("S");
        };
        assert_eq!(count(g, &[("b", "b")]), TreeCount::One);
        assert_eq!(count(g, &[("a", "a"), ("b", "b")]), TreeCount::One);
    }

    #[test]
    fn ambiguous_nullability() {
        // S -> A A ; A -> ε | a : "a" splits two ways.
        let g = |gb: &mut GrammarBuilder| {
            gb.rule("S", &["A", "A"]);
            gb.rule("A", &[]);
            gb.rule("A", &["a"]);
            gb.start("S");
        };
        assert_eq!(count(g, &[("a", "a")]), TreeCount::Many);
        assert_eq!(count(g, &[]), TreeCount::One);
    }

    #[test]
    fn left_recursive_grammars_are_handled() {
        // The oracle is a DP, not a top-down parser: left recursion is
        // fine here (unlike in CoStar itself).
        let g = |gb: &mut GrammarBuilder| {
            gb.rule("E", &["E", "p", "E"]);
            gb.rule("E", &["i"]);
            gb.start("E");
        };
        assert_eq!(count(g, &[("i", "i")]), TreeCount::One);
        assert_eq!(
            count(g, &[("i", "i"), ("p", "p"), ("i", "i")]),
            TreeCount::One
        );
        // i p i p i: two association orders.
        assert_eq!(
            count(
                g,
                &[("i", "i"), ("p", "p"), ("i", "i"), ("p", "p"), ("i", "i")]
            ),
            TreeCount::Many
        );
    }
}
