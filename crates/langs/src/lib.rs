//! # costar-langs — the four benchmark languages of the CoStar evaluation
//!
//! The paper evaluates CoStar on JSON, XML, DOT, and Python 3 (§6.1,
//! Fig. 8). This crate reproduces that setup end to end, with one module
//! per language providing:
//!
//! * an EBNF grammar (compiled through `costar-ebnf`, mirroring the
//!   paper's ANTLR-grammar conversion pipeline; the XML grammar keeps the
//!   non-LL(k) element rule quoted in §6.1, and DOT follows the Graphviz
//!   grammar the original ANTLR evaluation used);
//! * a lexer built with `costar-lexer` (standing in for the ANTLR lexers
//!   the paper used to pre-tokenize input) — Python additionally layers
//!   the INDENT/DEDENT/NEWLINE logical-line discipline on top of the DFA
//!   scanner, like CPython's tokenizer;
//! * a seeded synthetic source generator. The paper's corpora (Open
//!   American National Corpus XML, the ANTLR evaluation's DOT files, the
//!   Python 3.6 standard library) are not redistributable here, so each
//!   generator produces realistically nested documents across a spread of
//!   sizes — Fig. 9/10/11 depend only on token-count scaling behavior,
//!   which the generators preserve.

#![warn(missing_docs)]

pub mod dot;
pub mod json;
pub mod python;
pub mod xml;

use costar_grammar::{Grammar, SymbolTable, Token};
use costar_lexer::{LexError, Lexer, LexerSpec};

/// How a language turns source text into the token word CoStar consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenizerKind {
    /// Run the DFA lexer over the whole input.
    Plain,
    /// Logical-line tokenization with INDENT/DEDENT/NEWLINE synthesis
    /// (Python).
    PythonIndent,
}

/// A benchmark language: its grammar, lexer, and synthetic generator.
#[derive(Debug)]
pub struct Language {
    /// Display name ("JSON", "XML", "DOT", "Python").
    pub name: &'static str,
    grammar: Grammar,
    lexer: Lexer,
    tokenizer: TokenizerKind,
    /// Nonterminals the EBNF desugaring introduced (for Fig. 8 notes).
    pub fresh_nonterminals: usize,
}

impl Language {
    fn build(
        name: &'static str,
        ebnf_src: &str,
        spec: &LexerSpec,
        tokenizer: TokenizerKind,
    ) -> Language {
        let (grammar, stats) =
            costar_ebnf::compile(ebnf_src).unwrap_or_else(|e| panic!("{name} grammar: {e}"));
        // Compile the lexer against a copy of the grammar's symbol table
        // so token terminals share the grammar's interned identities.
        let mut tab: SymbolTable = grammar.symbols().clone();
        let before = tab.num_terminals();
        let lexer = Lexer::compile(spec, &mut tab).unwrap_or_else(|e| panic!("{name} lexer: {e}"));
        assert_eq!(
            tab.num_terminals(),
            before,
            "{name}: lexer emits a terminal the grammar does not mention"
        );
        Language {
            name,
            grammar,
            lexer,
            tokenizer,
            fresh_nonterminals: stats.fresh_nonterminals,
        }
    }

    /// The language's (desugared BNF) grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The language's compiled lexer.
    pub fn lexer(&self) -> &Lexer {
        &self.lexer
    }

    /// Tokenizes source text into the word the parser consumes.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] on unmatchable input (or, for Python,
    /// inconsistent indentation).
    pub fn tokenize(&self, source: &str) -> Result<Vec<Token>, LexError> {
        match self.tokenizer {
            TokenizerKind::Plain => self.lexer.tokenize(source),
            TokenizerKind::PythonIndent => python::tokenize_indented(self, source),
        }
    }

    /// Whether [`Language::tokenize`] is exactly the DFA lexer over the
    /// whole input — the precondition for incremental lexing
    /// (`costar::Parser::parse_session` splices at DFA token boundaries).
    /// `false` for Python, whose INDENT/DEDENT/NEWLINE synthesis is a
    /// line-global pass over the raw token stream; editors of Python
    /// sources must re-tokenize from scratch.
    pub fn incremental_lexing(&self) -> bool {
        self.tokenizer == TokenizerKind::Plain
    }

    /// Grammar-size statistics for the Fig. 8 table: `(|T|, |N|, |P|)` of
    /// the desugared BNF grammar.
    pub fn grammar_stats(&self) -> (usize, usize, usize) {
        (
            self.grammar.num_terminals(),
            self.grammar.num_nonterminals(),
            self.grammar.num_productions(),
        )
    }
}

/// A synthetic source generator: `(seed, approximate size knob) → source`.
/// Larger knob values produce longer documents, roughly linearly.
pub type Generator = fn(u64, usize) -> String;

/// All four benchmark languages with their generators, in the paper's
/// Fig. 8 order.
pub fn all_languages() -> Vec<(Language, Generator)> {
    vec![
        (json::language(), json::generate as Generator),
        (xml::language(), xml::generate as Generator),
        (dot::language(), dot::generate as Generator),
        (python::language(), python::generate as Generator),
    ]
}

/// Generates a corpus of files across a spread of sizes, mirroring the
/// paper's many-files-of-varying-size data sets (§6.1, footnote 6:
/// "Testing CoStar on many files of varying size gave us a clearer
/// picture of the tool's asymptotic behavior").
pub fn corpus(generate: Generator, seed: u64, num_files: usize, max_size: usize) -> Vec<String> {
    (0..num_files)
        .map(|i| {
            // Sizes spread linearly from ~max/num_files up to ~max.
            let size = (max_size * (i + 1)).div_ceil(num_files).max(1);
            generate(seed.wrapping_add(i as u64), size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_languages_build() {
        let langs = all_languages();
        assert_eq!(langs.len(), 4);
        let names: Vec<&str> = langs.iter().map(|(l, _)| l.name).collect();
        assert_eq!(names, vec!["JSON", "XML", "DOT", "Python"]);
    }

    #[test]
    fn corpora_scale_with_the_size_knob() {
        for (lang, generate) in all_languages() {
            let files = corpus(generate, 1, 5, 200);
            let sizes: Vec<usize> = files
                .iter()
                .map(|f| lang.tokenize(f).expect("generated files lex").len())
                .collect();
            assert!(sizes.iter().all(|&s| s > 0), "{}: empty file", lang.name);
            let smallest = *sizes.iter().min().unwrap();
            let largest = *sizes.iter().max().unwrap();
            assert!(
                largest >= smallest * 2,
                "{}: sizes do not spread: {sizes:?}",
                lang.name
            );
        }
    }

    #[test]
    fn audit_classifies_every_decision_point_exactly_once() {
        // The audit pass must hand every multi-alternative nonterminal of
        // every bundled grammar exactly one verdict out of {dead,
        // shadowed, LL(1), bounded SLL, unbounded regular lookahead} —
        // and none of the shipped grammars may carry a dead or shadowed
        // alternative (those are grammar bugs, not language features).
        use costar_grammar::analysis::{DecisionClass, GrammarAnalysis};
        for (lang, _) in all_languages() {
            let g = lang.grammar();
            let analysis = GrammarAnalysis::compute(g);
            let mut ll1 = 0usize;
            let mut bounded = 0usize;
            let mut unbounded = 0usize;
            for x in g.symbols().nonterminals() {
                let name = g.symbols().nonterminal_name(x);
                if g.alternatives(x).len() < 2 {
                    assert!(
                        analysis.audit.audit(x).is_none(),
                        "{}: `{name}` is not a decision point but was audited",
                        lang.name
                    );
                    continue;
                }
                let a = analysis.audit.audit(x).unwrap_or_else(|| {
                    panic!("{}: decision point `{name}` was not audited", lang.name)
                });
                let is_ll1 = analysis
                    .decisions
                    .decision(x)
                    .is_some_and(|d| d.class == DecisionClass::Ll1);
                let verdicts = [
                    !a.dead.is_empty(),
                    a.dead.is_empty() && !a.shadowed.is_empty(),
                    a.dead.is_empty() && a.shadowed.is_empty() && is_ll1,
                    a.dead.is_empty() && a.shadowed.is_empty() && !is_ll1 && a.k.is_some(),
                    a.dead.is_empty() && a.shadowed.is_empty() && !is_ll1 && a.k.is_none(),
                ];
                assert_eq!(
                    verdicts.iter().filter(|&&v| v).count(),
                    1,
                    "{}: `{name}` verdicts {verdicts:?}",
                    lang.name
                );
                assert!(
                    a.dead.is_empty() && a.shadowed.is_empty(),
                    "{}: bundled grammar has a dead/shadowed alternative at `{name}`",
                    lang.name
                );
                // An LL(1)-classified decision is single-token decidable,
                // so the audit must certify exactly k = 1 for it.
                if is_ll1 {
                    assert_eq!(
                        a.k,
                        Some(1),
                        "{}: LL(1) `{name}` certified {:?}",
                        lang.name,
                        a.k
                    );
                    ll1 += 1;
                } else if a.k.is_some() {
                    bounded += 1;
                } else {
                    unbounded += 1;
                }
            }
            let stats = analysis.audit.stats();
            assert_eq!(
                stats.decision_points,
                ll1 + bounded + unbounded,
                "{}: verdict counts do not partition the decision points",
                lang.name
            );
            assert_eq!(stats.dead_alternatives, 0, "{}", lang.name);
            assert_eq!(stats.shadowed_alternatives, 0, "{}", lang.name);
            assert!(ll1 > 0, "{}: no LL(1) decision at all", lang.name);
            // The §6.1 contrast: JSON is fully bounded (every decision
            // certifies a finite k), while XML keeps the paper's
            // non-LL(k) element rule — genuinely unbounded lookahead.
            match lang.name {
                "JSON" => assert_eq!(unbounded, 0, "JSON decision lost its bound"),
                "XML" => assert!(unbounded > 0, "XML element rule became bounded"),
                _ => {}
            }
        }
    }

    #[test]
    fn grammar_stats_are_nontrivial() {
        for (lang, _) in all_languages() {
            let (t, n, p) = lang.grammar_stats();
            assert!(t >= 10, "{}: |T| = {t}", lang.name);
            assert!(n >= 7, "{}: |N| = {n}", lang.name);
            assert!(p >= 17, "{}: |P| = {p}", lang.name);
        }
    }
}
