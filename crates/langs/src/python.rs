//! The Python-like benchmark language (paper Fig. 8: |T|=89, |N|=287,
//! |P|=521 for the full Python 3 grammar).
//!
//! This is a substantial subset of the Python 3 grammar from the ANTLR
//! grammar repository the paper used: the full statement/compound
//! statement split, the complete expression precedence ladder, function
//! and class definitions, imports, and the INDENT/DEDENT block structure.
//! It is by far the largest benchmark grammar, which is the property the
//! paper's §6.1 profiling discussion ties to CoStar's slower
//! tokens-per-second rate on Python.
//!
//! Tokenization follows CPython's model: a DFA scanner handles the tokens
//! of one logical line, while [`tokenize_indented`] supplies the
//! out-of-band NEWLINE / INDENT / DEDENT discipline (blank lines and
//! comment lines vanish; brackets suppress newlines; indentation changes
//! become synthetic tokens). The paper notes the ANTLR Python *lexer* is
//! disproportionately slow "possibly due to Python's complex whitespace
//! and indentation rules" — this module is where those rules live for us.

use crate::{Language, TokenizerKind};
use costar_grammar::{Span, Token};
use costar_lexer::{LexError, LexerSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The Python-like grammar in the EBNF notation of `costar-ebnf`.
pub const GRAMMAR: &str = r#"
file_input : stmt* ;
stmt : simple_stmt | compound_stmt ;

simple_stmt : small_stmt (';' small_stmt)* ';'? NEWLINE ;
small_stmt : expr_stmt | del_stmt | pass_stmt | flow_stmt
           | import_stmt | global_stmt | assert_stmt ;
expr_stmt : testlist (augassign testlist | ('=' testlist)*) ;
augassign : '+=' | '-=' | '*=' | '/=' | '%=' | '&=' | '|=' | '^='
          | '<<=' | '>>=' | '**=' | '//=' ;
del_stmt : 'del' exprlist ;
pass_stmt : 'pass' ;
flow_stmt : break_stmt | continue_stmt | return_stmt | raise_stmt ;
break_stmt : 'break' ;
continue_stmt : 'continue' ;
return_stmt : 'return' testlist? ;
raise_stmt : 'raise' (test ('from' test)?)? ;
import_stmt : import_name | import_from ;
import_name : 'import' dotted_as_names ;
import_from : 'from' dotted_name 'import' ('*' | import_as_names) ;
import_as_names : import_as_name (',' import_as_name)* ;
import_as_name : NAME ('as' NAME)? ;
dotted_as_names : dotted_as_name (',' dotted_as_name)* ;
dotted_as_name : dotted_name ('as' NAME)? ;
dotted_name : NAME ('.' NAME)* ;
global_stmt : 'global' NAME (',' NAME)* ;
assert_stmt : 'assert' test (',' test)? ;

compound_stmt : if_stmt | while_stmt | for_stmt | try_stmt | with_stmt
              | funcdef | classdef ;
if_stmt : 'if' test ':' suite ('elif' test ':' suite)* ('else' ':' suite)? ;
while_stmt : 'while' test ':' suite ('else' ':' suite)? ;
for_stmt : 'for' exprlist 'in' testlist ':' suite ('else' ':' suite)? ;
try_stmt : 'try' ':' suite
           ( (except_clause ':' suite)+ ('else' ':' suite)? ('finally' ':' suite)?
           | 'finally' ':' suite ) ;
except_clause : 'except' (test ('as' NAME)?)? ;
with_stmt : 'with' with_item (',' with_item)* ':' suite ;
with_item : test ('as' expr)? ;
funcdef : 'def' NAME parameters ('->' test)? ':' suite ;
parameters : '(' typedargslist? ')' ;
typedargslist : tfpdef ('=' test)? (',' tfpdef ('=' test)?)* ;
tfpdef : NAME (':' test)? ;
classdef : 'class' NAME ('(' arglist? ')')? ':' suite ;
suite : simple_stmt | NEWLINE INDENT stmt+ DEDENT ;

test : or_test ('if' or_test 'else' test)? | lambdef ;
lambdef : 'lambda' varargslist? ':' test ;
varargslist : NAME (',' NAME)* ;
or_test : and_test ('or' and_test)* ;
and_test : not_test ('and' not_test)* ;
not_test : 'not' not_test | comparison ;
comparison : expr (comp_op expr)* ;
comp_op : '<' | '>' | '==' | '>=' | '<=' | '!=' | 'in' | 'not' 'in'
        | 'is' | 'is' 'not' ;
expr : xor_expr ('|' xor_expr)* ;
xor_expr : and_expr ('^' and_expr)* ;
and_expr : shift_expr ('&' shift_expr)* ;
shift_expr : arith_expr (('<<' | '>>') arith_expr)* ;
arith_expr : term (('+' | '-') term)* ;
term : factor (('*' | '/' | '%' | '//') factor)* ;
factor : ('+' | '-' | '~') factor | power ;
power : atom_expr ('**' factor)? ;
atom_expr : atom trailer* ;
atom : '(' testlist? ')'
     | '[' testlist? ']'
     | '{' dictorsetmaker? '}'
     | NAME | NUMBER | STRING+ | '...' | 'None' | 'True' | 'False' ;
dictorsetmaker : test ':' test (',' test ':' test)* ','?
               | test (',' test)* ','? ;
trailer : '(' arglist? ')' | '[' subscript ']' | '.' NAME ;
subscript : test (':' test?)? | ':' test? ;
arglist : argument (',' argument)* ;
argument : test ('=' test)? ;
exprlist : expr (',' expr)* ;
testlist : test (',' test)* ;
"#;

fn lexer_spec() -> LexerSpec {
    let mut spec = LexerSpec::new();
    // Keywords before NAME so they win length ties.
    for kw in [
        "del", "pass", "break", "continue", "return", "raise", "import", "from", "as", "global",
        "assert", "if", "elif", "else", "while", "for", "in", "try", "except", "finally", "with",
        "def", "class", "lambda", "or", "and", "not", "is", "None", "True", "False",
    ] {
        spec.token_literal(kw, kw);
    }
    // Multi-character operators before their prefixes.
    for op in [
        "**=", "//=", "<<=", ">>=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "==", "!=",
        ">=", "<=", "<<", ">>", "**", "//", "->", "...",
    ] {
        spec.token_literal(op, op);
    }
    for op in [
        "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "(", ")", "[", "]", "{", "}",
        ",", ":", ";", ".",
    ] {
        spec.token_literal(op, op);
    }
    spec.token("NAME", "[a-zA-Z_][a-zA-Z0-9_]*")
        .token("NUMBER", r"[0-9]+(\.[0-9]*)?([eE][+\-]?[0-9]+)?")
        .token("STRING", r#"'([^'\\\n]|\\.)*'|"([^"\\\n]|\\.)*""#)
        .skip("ws", "[ \\t]+")
        .skip("comment", "#[^\\n]*");
    spec
}

/// Builds the Python-like [`Language`].
pub fn language() -> Language {
    Language::build(
        "Python",
        GRAMMAR,
        &lexer_spec(),
        TokenizerKind::PythonIndent,
    )
}

/// CPython-style logical-line tokenization: runs the DFA lexer on each
/// line's content and synthesizes NEWLINE / INDENT / DEDENT tokens from
/// the layout. Newlines inside brackets are implicit continuations; blank
/// and comment-only lines produce nothing.
///
/// # Errors
///
/// Returns [`LexError`] for unmatchable characters or inconsistent
/// dedentation.
pub fn tokenize_indented(lang: &Language, source: &str) -> Result<Vec<Token>, LexError> {
    let symbols = lang.grammar().symbols();
    let lookup = |name: &str| {
        symbols
            .lookup_terminal(name)
            .unwrap_or_else(|| panic!("grammar defines {name}"))
    };
    let newline = lookup("NEWLINE");
    let indent = lookup("INDENT");
    let dedent = lookup("DEDENT");

    let mut out: Vec<Token> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    let mut depth: i64 = 0; // bracket nesting depth
    let mut offset = 0usize;
    let mut line_no = 0u32;

    let open = ["(", "[", "{"].map(lookup);
    let close = [")", "]", "}"].map(lookup);

    for raw_line in source.split('\n') {
        let line_offset = offset;
        offset += raw_line.len() + 1;
        line_no = line_no.saturating_add(1);
        // A CRLF terminator leaves a trailing '\r' on the split line; it
        // belongs to the line ending, not the content — the per-line
        // lexer has no rule for it.
        let line = raw_line.strip_suffix('\r').unwrap_or(raw_line);
        let trimmed = line.trim_start_matches([' ', '\t']);
        if depth == 0 {
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let width = line.len() - trimmed.len();
            // Synthetic layout tokens sit at column 1 of the line that
            // triggered them.
            let layout_span = Span::new(line_offset, 0, line_no, 1);
            if width > *indents.last().expect("nonempty") {
                indents.push(width);
                out.push(Token::with_span(indent, "", layout_span));
            } else {
                while width < *indents.last().expect("nonempty") {
                    indents.pop();
                    out.push(Token::with_span(dedent, "", layout_span));
                }
                if width != *indents.last().expect("nonempty") {
                    return Err(LexError {
                        at: line_offset,
                        snippet: format!("inconsistent dedent to column {width}"),
                    });
                }
            }
        }
        let content = if depth == 0 { trimmed } else { line };
        let strip = line.len() - content.len();
        let base = line_offset + strip;
        let toks = lang.lexer().tokenize(content).map_err(|e| LexError {
            at: base + e.at,
            snippet: e.snippet,
        })?;
        for t in &toks {
            if open.contains(&t.terminal()) {
                depth += 1;
            } else if close.contains(&t.terminal()) {
                depth -= 1;
            }
        }
        let had_tokens = !toks.is_empty();
        out.extend(toks.into_iter().map(|t| {
            // The per-line lexer reports line 1 and columns relative to
            // the stripped content; rebase onto the real source line.
            let sp = t.span();
            let span = Span::new(
                base + sp.offset,
                sp.len,
                line_no,
                sp.col.saturating_add(strip as u32),
            );
            Token::with_span(t.terminal(), t.lexeme(), span)
        }));
        if depth == 0 && had_tokens {
            let eol = Span::new(
                offset.saturating_sub(1),
                0,
                line_no,
                (line.len() as u32).saturating_add(1),
            );
            out.push(Token::with_span(newline, "", eol));
        }
    }
    // Close any open blocks (at a virtual line past the end).
    while indents.len() > 1 {
        indents.pop();
        out.push(Token::with_span(
            dedent,
            "",
            Span::new(offset, 0, line_no.saturating_add(1), 1),
        ));
    }
    Ok(out)
}

/// Generates a random Python-like module whose token count grows roughly
/// linearly with `size`.
pub fn generate(seed: u64, size: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    out.push_str("import os\nfrom sys import path as p, argv\n");
    let mut budget = size as i64 - 12;
    let mut n = 0usize;
    while budget > 0 {
        match rng.random_range(0..4) {
            0 => gen_funcdef(&mut rng, &mut out, n, &mut budget),
            1 => gen_classdef(&mut rng, &mut out, n, &mut budget),
            _ => gen_stmt(&mut rng, &mut out, 0, &mut budget),
        }
        n += 1;
    }
    out
}

fn indent_to(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn gen_funcdef(rng: &mut SmallRng, out: &mut String, n: usize, budget: &mut i64) {
    let params = rng.random_range(0..4);
    indent_to(out, 0);
    let _ = write!(out, "def f{n}(");
    for i in 0..params {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "arg{i}");
        if rng.random_bool(0.3) {
            let _ = write!(out, "={}", rng.random_range(0..10));
        }
    }
    out.push_str("):\n");
    *budget -= 7 + params as i64;
    gen_block(rng, out, 1, budget);
}

fn gen_classdef(rng: &mut SmallRng, out: &mut String, n: usize, budget: &mut i64) {
    let _ = writeln!(out, "class C{n}(object):");
    *budget -= 7;
    indent_to(out, 1);
    let _ = writeln!(out, "def method(self):");
    *budget -= 8;
    gen_block(rng, out, 2, budget);
}

fn gen_block(rng: &mut SmallRng, out: &mut String, level: usize, budget: &mut i64) {
    let stmts = rng.random_range(1..=3);
    for _ in 0..stmts {
        gen_stmt(rng, out, level, budget);
    }
}

fn gen_stmt(rng: &mut SmallRng, out: &mut String, level: usize, budget: &mut i64) {
    indent_to(out, level);
    match rng.random_range(0..10) {
        0..=3 => {
            // Assignment or expression statement.
            let _ = write!(out, "x{} = ", rng.random_range(0..20));
            gen_expr(rng, out, 2, budget);
            out.push('\n');
            *budget -= 3;
        }
        4 => {
            out.push_str("pass\n");
            *budget -= 2;
        }
        5 if level > 0 => {
            out.push_str("return ");
            gen_expr(rng, out, 1, budget);
            out.push('\n');
            *budget -= 3;
        }
        6 if level < 3 && *budget > 10 => {
            out.push_str("if ");
            gen_expr(rng, out, 1, budget);
            out.push_str(":\n");
            *budget -= 4;
            gen_block(rng, out, level + 1, budget);
            if rng.random_bool(0.4) {
                indent_to(out, level);
                out.push_str("else:\n");
                *budget -= 3;
                gen_block(rng, out, level + 1, budget);
            }
        }
        7 if level < 3 && *budget > 10 => {
            let _ = write!(out, "for i{} in ", rng.random_range(0..5));
            gen_expr(rng, out, 1, budget);
            out.push_str(":\n");
            *budget -= 5;
            gen_block(rng, out, level + 1, budget);
        }
        8 => {
            out.push_str("assert ");
            gen_expr(rng, out, 1, budget);
            let _ = write!(out, ", \"msg{}\"", rng.random_range(0..10));
            out.push('\n');
            *budget -= 4;
        }
        _ => {
            // Call statement.
            let _ = write!(out, "f{}(", rng.random_range(0..5));
            gen_expr(rng, out, 1, budget);
            out.push_str(")\n");
            *budget -= 4;
        }
    }
}

fn gen_expr(rng: &mut SmallRng, out: &mut String, depth: usize, budget: &mut i64) {
    *budget -= 1;
    if depth == 0 || *budget <= 0 {
        match rng.random_range(0..4) {
            0 => {
                let _ = write!(out, "x{}", rng.random_range(0..20));
            }
            1 => {
                let _ = write!(out, "{}", rng.random_range(0..100));
            }
            2 => {
                let _ = write!(out, "\"s{}\"", rng.random_range(0..50));
            }
            _ => out.push_str("None"),
        }
        return;
    }
    match rng.random_range(0..8) {
        0..=2 => {
            gen_expr(rng, out, depth - 1, budget);
            let op = ["+", "-", "*", "//", "%", "==", "<", "and", "or"][rng.random_range(0..9)];
            let _ = write!(out, " {op} ");
            gen_expr(rng, out, depth - 1, budget);
            *budget -= 1;
        }
        3 => {
            out.push('(');
            gen_expr(rng, out, depth - 1, budget);
            out.push(')');
            *budget -= 2;
        }
        4 => {
            out.push('[');
            let n = rng.random_range(1..=3);
            for i in 0..n {
                if i > 0 {
                    out.push_str(", ");
                }
                gen_expr(rng, out, depth - 1, budget);
            }
            out.push(']');
            *budget -= 2 + n as i64;
        }
        5 => {
            // Attribute / call trailer chain.
            let _ = write!(
                out,
                "x{}.attr{}(",
                rng.random_range(0..20),
                rng.random_range(0..5)
            );
            gen_expr(rng, out, depth - 1, budget);
            out.push(')');
            *budget -= 5;
        }
        6 => {
            // Parenthesized so the boolean-level `not` can sit under
            // arithmetic operators chosen by the binary branch.
            out.push_str("(not ");
            gen_expr(rng, out, depth - 1, budget);
            out.push(')');
            *budget -= 3;
        }
        _ => {
            let _ = write!(out, "{{\"k\": ");
            gen_expr(rng, out, depth - 1, budget);
            out.push('}');
            *budget -= 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar::{ParseOutcome, Parser};

    fn kinds(lang: &Language, src: &str) -> Vec<String> {
        lang.tokenize(src)
            .unwrap()
            .iter()
            .map(|t| {
                lang.grammar()
                    .symbols()
                    .terminal_name(t.terminal())
                    .to_owned()
            })
            .collect()
    }

    #[test]
    fn grammar_is_large_like_fig8() {
        let lang = language();
        let (t, n, p) = lang.grammar_stats();
        assert!(t >= 60, "|T| = {t}");
        assert!(n >= 100, "|N| = {n}");
        assert!(p >= 200, "|P| = {p}");
    }

    #[test]
    fn indentation_produces_block_tokens() {
        let lang = language();
        let src = "if x:\n    y = 1\nz = 2\n";
        let ks = kinds(&lang, src);
        assert_eq!(
            ks,
            vec![
                "if", "NAME", ":", "NEWLINE", "INDENT", "NAME", "=", "NUMBER", "NEWLINE", "DEDENT",
                "NAME", "=", "NUMBER", "NEWLINE"
            ]
        );
    }

    #[test]
    fn blank_and_comment_lines_vanish() {
        let lang = language();
        let src = "x = 1\n\n   \n# comment only\nx = 2\n";
        let ks = kinds(&lang, src);
        assert_eq!(ks.iter().filter(|k| *k == "NEWLINE").count(), 2);
        assert!(!ks.contains(&"INDENT".to_owned()));
    }

    #[test]
    fn brackets_suppress_newlines() {
        let lang = language();
        let src = "x = [1,\n     2,\n     3]\n";
        let ks = kinds(&lang, src);
        assert_eq!(ks.iter().filter(|k| *k == "NEWLINE").count(), 1);
        assert!(!ks.contains(&"INDENT".to_owned()));
    }

    #[test]
    fn crlf_lines_tokenize_like_lf_lines() {
        let lang = language();
        let lf = "if x:\n    y = 1\nz = 2\n";
        let crlf = lf.replace('\n', "\r\n");
        assert_eq!(kinds(&lang, &crlf), kinds(&lang, lf));
        // Token lexemes survive unchanged; only byte offsets shift by
        // the extra '\r' per preceding line ending.
        let lf_toks = lang.tokenize(lf).unwrap();
        let crlf_toks = lang.tokenize(&crlf).unwrap();
        for (a, b) in lf_toks.iter().zip(&crlf_toks) {
            assert_eq!(a.lexeme(), b.lexeme());
            assert_eq!(a.span().line, b.span().line);
            assert!(b.span().offset >= a.span().offset);
        }
    }

    #[test]
    fn trailing_dedents_are_emitted() {
        let lang = language();
        let src = "def f():\n    if x:\n        return 1\n";
        let ks = kinds(&lang, src);
        assert_eq!(ks.iter().filter(|k| *k == "DEDENT").count(), 2);
    }

    #[test]
    fn inconsistent_dedent_is_an_error() {
        let lang = language();
        let src = "if x:\n        y = 1\n   z = 2\n";
        assert!(lang.tokenize(src).is_err());
    }

    #[test]
    fn parses_handwritten_module() {
        let lang = language();
        let src = r#"
import os
from sys import path as p

def fib(n, acc=0):
    if n <= 1:
        return n
    else:
        return fib(n - 1) + fib(n - 2)

class Greeter(object):
    def greet(self, name):
        msg = "hello " + name
        print(msg)
        return {"msg": msg, "n": len(name)}

for i in range(10):
    x = fib(i) ** 2 // 3
    assert x >= 0, "non-negative"
    if x % 2 == 0 and not x == 4:
        print(x, i)
"#;
        let tokens = lang.tokenize(src).unwrap();
        let mut parser = Parser::new(lang.grammar().clone());
        let outcome = parser.parse(&tokens);
        assert!(
            matches!(outcome, ParseOutcome::Unique(_)),
            "got {outcome:?}"
        );
    }

    #[test]
    fn assignment_vs_expression_needs_two_tokens() {
        // "x = 1" vs "x" alone: the expr_stmt decision is not LL(1) —
        // the case that keeps Python off the quick-decision fast path.
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for src in ["x = 1\n", "x\n", "x += 1\n", "x = y = 1\n", "f(1)\n"] {
            let tokens = lang.tokenize(src).unwrap();
            assert!(
                matches!(parser.parse(&tokens), ParseOutcome::Unique(_)),
                "{src}"
            );
        }
    }

    #[test]
    fn rejects_malformed_modules() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for bad in [
            "def f(:\n    pass\n",
            "if x\n    pass\n",
            "return\n pass\n",
            "x = = 1\n",
        ] {
            if let Ok(tokens) = lang.tokenize(bad) {
                assert!(!parser.parse(&tokens).is_accept(), "accepted {bad:?}");
            }
        }
    }

    #[test]
    fn generated_modules_parse_uniquely() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for seed in 0..6 {
            let src = generate(seed, 150);
            let tokens = lang
                .tokenize(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let outcome = parser.parse(&tokens);
            assert!(
                matches!(outcome, ParseOutcome::Unique(_)),
                "seed {seed}: {outcome:?}\n{src}"
            );
        }
    }
}

#[cfg(test)]
mod indent_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Random nesting structures: INDENT and DEDENT tokens are always
        /// balanced, and every generated logical line produces exactly one
        /// NEWLINE.
        #[test]
        fn indent_dedent_always_balanced(levels in proptest::collection::vec(0usize..5, 1..20)) {
            let lang = language();
            // Build a syntactically plausible nesting: a line may only
            // indent one level past its predecessor, so clamp.
            let mut src = String::new();
            let mut prev = 0usize;
            let mut lines = 0usize;
            for &want in &levels {
                let level = want.min(prev + 1);
                for _ in 0..level {
                    src.push_str("    ");
                }
                if level > prev {
                    // The line introducing a block must have been a
                    // header; rewrite the previous line by appending a
                    // fresh header here instead (keep it simple: emit a
                    // header at this level too so the NEXT line may nest).
                }
                src.push_str("if x:\n");
                prev = level;
                lines += 1;
            }
            let tokens = lang.tokenize(&src).expect("well-nested input lexes");
            let symbols = lang.grammar().symbols();
            let count = |name: &str| {
                tokens
                    .iter()
                    .filter(|t| symbols.terminal_name(t.terminal()) == name)
                    .count()
            };
            prop_assert_eq!(count("INDENT"), count("DEDENT"));
            prop_assert_eq!(count("NEWLINE"), lines);
        }

        /// Arbitrary text never makes the tokenizer panic: it either
        /// tokenizes or reports a lexical error.
        #[test]
        fn tokenizer_is_total(src in "[a-z0-9 :=#\\n\\t(){}\\[\\]+\\-*/]{0,120}") {
            let lang = language();
            let _ = lang.tokenize(&src); // must not panic
        }
    }
}
