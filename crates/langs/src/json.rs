//! The JSON benchmark language (paper Fig. 8: |T|=11, |N|=7, |P|=17).
//!
//! The grammar follows the ANTLR JSON grammar the paper reused from the
//! original ALL(*) evaluation; after desugaring it is close to the
//! paper's counts (the exact numbers depend on how the conversion tool
//! introduces fresh nonterminals). JSON is LL(1)-friendly, making it the
//! paper's fastest benchmark per token.

use crate::{Language, TokenizerKind};
use costar_lexer::LexerSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The JSON grammar in the EBNF notation of `costar-ebnf`.
pub const GRAMMAR: &str = r#"
json  : value ;
value : obj | arr | STRING | NUMBER | 'true' | 'false' | 'null' ;
obj   : '{' (pair (',' pair)*)? '}' ;
pair  : STRING ':' value ;
arr   : '[' (value (',' value)*)? ']' ;
"#;

fn lexer_spec() -> LexerSpec {
    let mut spec = LexerSpec::new();
    spec.token_literal("true", "true")
        .token_literal("false", "false")
        .token_literal("null", "null")
        .token_literal("{", "{")
        .token_literal("}", "}")
        .token_literal("[", "[")
        .token_literal("]", "]")
        .token_literal(",", ",")
        .token_literal(":", ":")
        .token("STRING", r#""([^"\\]|\\.)*""#)
        .token("NUMBER", r"-?[0-9]+(\.[0-9]+)?([eE][+\-]?[0-9]+)?")
        .skip("ws", "[ \\t\\r\\n]+");
    spec
}

/// Builds the JSON [`Language`].
pub fn language() -> Language {
    Language::build("JSON", GRAMMAR, &lexer_spec(), TokenizerKind::Plain)
}

/// Generates a random JSON document whose token count grows roughly
/// linearly with `size`.
pub fn generate(seed: u64, size: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    // A top-level object that keeps acquiring entries until the token
    // budget is spent, so document size tracks `size` linearly.
    let mut budget = size as i64;
    out.push('{');
    let mut i = 0usize;
    while budget > 0 {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"key{i}\":");
        budget -= 3;
        gen_value(&mut rng, &mut out, 3, &mut budget);
        i += 1;
    }
    out.push('}');
    out
}

fn gen_value(rng: &mut SmallRng, out: &mut String, depth: usize, budget: &mut i64) {
    *budget -= 1;
    let choice = if depth == 0 || *budget <= 0 {
        rng.random_range(0..5) + 2 // scalars only
    } else {
        rng.random_range(0..7)
    };
    match choice {
        0 => {
            // Object.
            out.push('{');
            let n = rng.random_range(1..=4 + (*budget / 8).clamp(0, 8) as usize);
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"k{}\":", rng.random_range(0..100));
                gen_value(rng, out, depth - 1, budget);
            }
            out.push('}');
        }
        1 => {
            // Array.
            out.push('[');
            let n = rng.random_range(1..=4 + (*budget / 8).clamp(0, 8) as usize);
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                gen_value(rng, out, depth - 1, budget);
            }
            out.push(']');
        }
        2 => {
            let _ = write!(out, "\"s{}\"", rng.random_range(0..1000));
        }
        3 => {
            let _ = write!(out, "{}", rng.random_range(-1000..1000));
        }
        4 => {
            let _ = write!(
                out,
                "{}.{}",
                rng.random_range(0..100),
                rng.random_range(0..100)
            );
        }
        5 => out.push_str("true"),
        _ => out.push_str(if rng.random_bool(0.5) {
            "false"
        } else {
            "null"
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar::{ParseOutcome, Parser};

    #[test]
    fn grammar_size_matches_fig8_scale() {
        let lang = language();
        let (t, n, p) = lang.grammar_stats();
        assert_eq!(t, 11, "|T|");
        // Desugaring details shift |N| and |P| slightly vs. the paper's
        // 7 and 17; stay in the same ballpark.
        assert!((7..=12).contains(&n), "|N| = {n}");
        assert!((15..=22).contains(&p), "|P| = {p}");
    }

    #[test]
    fn lexes_and_parses_handwritten_json() {
        let lang = language();
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let tokens = lang.tokenize(src).unwrap();
        let mut parser = Parser::new(lang.grammar().clone());
        let ParseOutcome::Unique(tree) = parser.parse(&tokens) else {
            panic!("expected unique parse")
        };
        assert_eq!(tree.leaf_count(), tokens.len());
    }

    #[test]
    fn rejects_malformed_json() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for bad in ["{", "[1,]", "{\"a\" 1}", "1 2", ""] {
            if let Ok(tokens) = lang.tokenize(bad) {
                assert!(
                    !parser.parse(&tokens).is_accept(),
                    "accepted malformed {bad:?}"
                );
            }
        }
    }

    #[test]
    fn generated_documents_parse_uniquely() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for seed in 0..10 {
            let src = generate(seed, 120);
            let tokens = lang.tokenize(&src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert!(
                matches!(parser.parse(&tokens), ParseOutcome::Unique(_)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42, 100), generate(42, 100));
        assert_ne!(generate(42, 100), generate(43, 100));
    }

    #[test]
    fn string_escapes_lex() {
        let lang = language();
        let tokens = lang.tokenize(r#""a\"b\\c""#).unwrap();
        assert_eq!(tokens.len(), 1);
        assert_eq!(
            lang.grammar().symbols().terminal_name(tokens[0].terminal()),
            "STRING"
        );
    }
}
