//! The DOT (Graphviz) benchmark language (paper Fig. 8: |T|=20, |N|=44,
//! |P|=73).
//!
//! The grammar transliterates the Graphviz DOT grammar used by the
//! original ALL(*) evaluation (whose data the paper reused). DOT's
//! statement syntax is not LL(1): a statement starting with an identifier
//! can be a node statement, an edge statement, or an attribute
//! assignment, and the decision may require scanning past a port
//! specification to an edge operator.

use crate::{Language, TokenizerKind};
use costar_lexer::LexerSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The DOT grammar in the EBNF notation of `costar-ebnf`.
pub const GRAMMAR: &str = r#"
graph      : 'strict'? ('graph' | 'digraph') id? '{' stmt_list '}' ;
stmt_list  : (stmt ';'?)* ;
stmt       : id '=' id
           | edge_stmt
           | node_stmt
           | attr_stmt
           | subgraph ;
attr_stmt  : ('graph' | 'node' | 'edge') attr_list ;
attr_list  : ('[' a_list? ']')+ ;
a_list     : (id ('=' id)? ','?)+ ;
edge_stmt  : (node_id | subgraph) edge_rhs attr_list? ;
edge_rhs   : (edgeop (node_id | subgraph))+ ;
edgeop     : '->' | '--' ;
node_stmt  : node_id attr_list? ;
node_id    : id port? ;
port       : ':' id (':' id)? ;
subgraph   : ('subgraph' id?)? '{' stmt_list '}' ;
id         : ID | STRING | NUMBER ;
"#;

fn lexer_spec() -> LexerSpec {
    let mut spec = LexerSpec::new();
    spec.token_literal("strict", "strict")
        .token_literal("graph", "graph")
        .token_literal("digraph", "digraph")
        .token_literal("node", "node")
        .token_literal("edge", "edge")
        .token_literal("subgraph", "subgraph")
        .token_literal("{", "{")
        .token_literal("}", "}")
        .token_literal("[", "[")
        .token_literal("]", "]")
        .token_literal(";", ";")
        .token_literal(",", ",")
        .token_literal("=", "=")
        .token_literal(":", ":")
        .token_literal("->", "->")
        .token_literal("--", "--")
        .token("ID", "[a-zA-Z_][a-zA-Z0-9_]*")
        .token("STRING", r#""[^"]*""#)
        .token("NUMBER", r"\-?(\.[0-9]+|[0-9]+(\.[0-9]*)?)")
        .skip("ws", "[ \\t\\r\\n]+")
        .skip("line_comment", "//[^\\n]*")
        .skip("block_comment", r"/\*([^*]|\*[^/])*\*/");
    spec
}

/// Builds the DOT [`Language`].
pub fn language() -> Language {
    Language::build("DOT", GRAMMAR, &lexer_spec(), TokenizerKind::Plain)
}

/// Generates a random DOT graph whose token count grows roughly linearly
/// with `size`.
pub fn generate(seed: u64, size: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    let directed = rng.random_bool(0.5);
    if rng.random_bool(0.2) {
        out.push_str("strict ");
    }
    out.push_str(if directed { "digraph" } else { "graph" });
    let _ = writeln!(out, " g{} {{", rng.random_range(0..100));
    let op = if directed { "->" } else { "--" };
    let mut budget = size as i64;
    // Global attribute statements.
    out.push_str("  graph [rankdir=LR];\n  node [shape=box, style=filled];\n");
    budget -= 14;
    while budget > 0 {
        match rng.random_range(0..10) {
            0..=3 => {
                // Edge chain.
                let len = rng.random_range(1..=4);
                out.push_str("  ");
                let _ = write!(out, "n{}", rng.random_range(0..50));
                for _ in 0..len {
                    let _ = write!(out, " {op} n{}", rng.random_range(0..50));
                    budget -= 2;
                }
                if rng.random_bool(0.4) {
                    let _ = write!(
                        out,
                        " [label=\"e{}\", weight={}]",
                        rng.random_range(0..20),
                        rng.random_range(1..10)
                    );
                    budget -= 9;
                }
                out.push_str(";\n");
                budget -= 2;
            }
            4..=6 => {
                // Node statement with a port or attributes.
                out.push_str("  ");
                let _ = write!(out, "n{}", rng.random_range(0..50));
                if rng.random_bool(0.3) {
                    let _ = write!(out, ":p{}", rng.random_range(0..4));
                    budget -= 2;
                }
                if rng.random_bool(0.7) {
                    let _ = write!(out, " [label=\"v{}\" color=red]", rng.random_range(0..100));
                    budget -= 8;
                }
                out.push_str(";\n");
                budget -= 2;
            }
            7 => {
                // Graph-level assignment.
                let _ = writeln!(out, "  fontsize = {};", rng.random_range(8..20));
                budget -= 4;
            }
            _ => {
                // Subgraph.
                let _ = write!(out, "  subgraph cluster{} {{ ", rng.random_range(0..10));
                let n = rng.random_range(1..=3);
                for _ in 0..n {
                    let _ = write!(
                        out,
                        "n{} {op} n{}; ",
                        rng.random_range(0..50),
                        rng.random_range(0..50)
                    );
                    budget -= 4;
                }
                out.push_str("}\n");
                budget -= 4;
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar::{ParseOutcome, Parser};

    #[test]
    fn grammar_size_matches_fig8_scale() {
        let lang = language();
        let (t, n, p) = lang.grammar_stats();
        assert_eq!(t, 19, "|T|");
        assert!((15..=50).contains(&n), "|N| = {n}");
        assert!((35..=80).contains(&p), "|P| = {p}");
    }

    #[test]
    fn parses_handwritten_graph() {
        let lang = language();
        let src = r#"
// a small graph
digraph g {
  graph [rankdir=LR];
  a -> b -> c [weight=2];
  b:port1 -> d;
  subgraph cluster0 { e -- f }
  label = "hello";
}
"#;
        let tokens = lang.tokenize(src).unwrap();
        let mut parser = Parser::new(lang.grammar().clone());
        assert!(matches!(parser.parse(&tokens), ParseOutcome::Unique(_)));
    }

    #[test]
    fn node_vs_edge_statements_disambiguate() {
        // "a;" is a node statement; "a -> b;" is an edge statement; both
        // start with the same id — the non-LL(1) decision.
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for src in [
            "graph g { a; }",
            "graph g { a -- b; }",
            "graph g { a:p -- b; }",
            "graph g { a [color=red]; }",
            "graph g { a = b; }",
        ] {
            let tokens = lang.tokenize(src).unwrap();
            assert!(
                matches!(parser.parse(&tokens), ParseOutcome::Unique(_)),
                "{src}"
            );
        }
    }

    #[test]
    fn rejects_malformed_graphs() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for bad in [
            "digraph {",
            "graph g { a -> ; }",
            "g { a; }",
            "graph g { [x] }",
        ] {
            if let Ok(tokens) = lang.tokenize(bad) {
                assert!(!parser.parse(&tokens).is_accept(), "accepted {bad:?}");
            }
        }
    }

    #[test]
    fn generated_graphs_parse_uniquely() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for seed in 0..10 {
            let src = generate(seed, 150);
            let tokens = lang.tokenize(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
            assert!(
                matches!(parser.parse(&tokens), ParseOutcome::Unique(_)),
                "seed {seed}: {src}"
            );
        }
    }

    #[test]
    fn comments_are_skipped() {
        let lang = language();
        let tokens = lang.tokenize("graph /* block */ g { // line\n }").unwrap();
        assert_eq!(tokens.len(), 4); // graph g { }
    }
}
