//! The XML benchmark language (paper Fig. 8: |T|=16, |N|=22, |P|=40).
//!
//! The grammar keeps the rule the paper highlights as evidence that the
//! benchmark exercises ALL(*)'s expressive power (§6.1):
//!
//! ```text
//! elt : '<' Name attribute* '>' content '<' '/' Name '>'
//!     | '<' Name attribute* '/>' ;
//! ```
//!
//! "Because of this rule, the grammar is not LL(k) for any k; prediction
//! must advance through an arbitrary number of XML attributes before
//! determining which of the two productions matches the remaining
//! input." The `xml_not_ll1` integration test checks exactly that via
//! the LL(1) baseline.

use crate::{Language, TokenizerKind};
use costar_lexer::LexerSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The XML grammar in the EBNF notation of `costar-ebnf`.
pub const GRAMMAR: &str = r#"
document  : misc* element misc* ;
misc      : COMMENT | PI ;
element   : '<' NAME attribute* '>' content '<' '/' NAME '>'
          | '<' NAME attribute* '/' '>' ;
attribute : NAME '=' STRING ;
content   : chunk* ;
chunk     : element | chardata | reference | COMMENT | PI ;
chardata  : NAME | NUMBER | ',' | '.' ;
reference : '&' NAME ';' ;
"#;

fn lexer_spec() -> LexerSpec {
    let mut spec = LexerSpec::new();
    spec.token("COMMENT", r"<!\-\-([^\-]|\-[^\-])*\-\->")
        .token("PI", r"<\?[^?]*\?>")
        .token_literal("<", "<")
        .token_literal(">", ">")
        .token_literal("/", "/")
        .token_literal("=", "=")
        .token_literal("&", "&")
        .token_literal(";", ";")
        .token_literal(",", ",")
        .token_literal(".", ".")
        .token("STRING", r#""[^"]*""#)
        .token("NAME", "[a-zA-Z_][a-zA-Z0-9_\\-]*")
        .token("NUMBER", "[0-9]+")
        .skip("ws", "[ \\t\\r\\n]+");
    spec
}

/// Builds the XML [`Language`].
pub fn language() -> Language {
    Language::build("XML", GRAMMAR, &lexer_spec(), TokenizerKind::Plain)
}

/// Generates a random XML document whose token count grows roughly
/// linearly with `size`. Elements carry a varying number of attributes,
/// exercising the non-LL(k) decision the paper calls out.
pub fn generate(seed: u64, size: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    if rng.random_bool(0.3) {
        out.push_str("<!-- generated corpus file -->\n");
    }
    // One root element that keeps acquiring children until the token
    // budget is spent, so document size tracks `size` linearly.
    let mut budget = size as i64;
    out.push_str("<doc>");
    while budget > 0 {
        gen_element(&mut rng, &mut out, 4, &mut budget);
        out.push('\n');
    }
    out.push_str("</doc>");
    out
}

const TAGS: [&str; 6] = ["doc", "section", "p", "span", "item", "data"];
const WORDS: [&str; 8] = [
    "lorem",
    "ipsum",
    "dolor",
    "sit",
    "amet",
    "consectetur",
    "adipiscing",
    "elit",
];

fn gen_element(rng: &mut SmallRng, out: &mut String, depth: usize, budget: &mut i64) {
    let tag = TAGS[rng.random_range(0..TAGS.len())];
    *budget -= 4;
    out.push('<');
    out.push_str(tag);
    // Attribute count varies widely so prediction scans varying spans.
    let attrs = rng.random_range(0..5usize);
    for i in 0..attrs {
        let _ = write!(out, " a{i}=\"v{}\"", rng.random_range(0..100));
        *budget -= 3;
    }
    if depth == 0 || *budget <= 0 || rng.random_bool(0.2) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let children = rng.random_range(1..=3 + (*budget / 10).clamp(0, 6) as usize);
    for _ in 0..children {
        if *budget <= 0 {
            break;
        }
        match rng.random_range(0..10) {
            0..=4 => gen_element(rng, out, depth - 1, budget),
            5..=7 => {
                // Character data.
                let n = rng.random_range(1..=5);
                for k in 0..n {
                    if k > 0 {
                        out.push(' ');
                    }
                    out.push_str(WORDS[rng.random_range(0..WORDS.len())]);
                    *budget -= 1;
                }
            }
            8 => {
                let _ = write!(out, "&{};", WORDS[rng.random_range(0..WORDS.len())]);
                *budget -= 3;
            }
            _ => {
                out.push_str("<!-- note -->");
                *budget -= 1;
            }
        }
    }
    let _ = write!(out, "</{tag}>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use costar::{ParseOutcome, Parser};

    #[test]
    fn grammar_size_matches_fig8_scale() {
        let lang = language();
        let (t, n, p) = lang.grammar_stats();
        assert_eq!(t, 13, "|T|");
        assert!((9..=24).contains(&n), "|N| = {n}");
        assert!((20..=45).contains(&p), "|P| = {p}");
    }

    #[test]
    fn parses_handwritten_document() {
        let lang = language();
        let src = r#"<!-- head --><doc version="1"><p a="x" b="y">hello world</p><br/><p>text &amp; more, punctuated.</p></doc>"#;
        let tokens = lang.tokenize(src).unwrap();
        let mut parser = Parser::new(lang.grammar().clone());
        assert!(
            matches!(parser.parse(&tokens), ParseOutcome::Unique(_)),
            "document should parse uniquely"
        );
    }

    #[test]
    fn self_closing_vs_open_needs_unbounded_lookahead() {
        // Both forms share the prefix '<' NAME attribute* — the decision
        // point the paper quotes. Parse one of each with many attributes.
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        let mut open = String::from("<doc");
        let mut selfc = String::from("<doc");
        for i in 0..20 {
            let a = format!(" a{i}=\"v\"");
            open.push_str(&a);
            selfc.push_str(&a);
        }
        open.push_str(">x</doc>");
        selfc.push_str("/>");
        for src in [open, selfc] {
            let tokens = lang.tokenize(&src).unwrap();
            assert!(
                matches!(parser.parse(&tokens), ParseOutcome::Unique(_)),
                "{src}"
            );
        }
    }

    #[test]
    fn rejects_mismatched_and_malformed() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        // Note: tag-name matching (<a></b>) is context-sensitive and NOT
        // enforced by the CFG (same as the paper's grammar); structural
        // errors are.
        for bad in ["<doc>", "</doc>", "<doc a=>x</doc>", "<doc><p></doc>"] {
            if let Ok(tokens) = lang.tokenize(bad) {
                assert!(!parser.parse(&tokens).is_accept(), "accepted {bad:?}");
            }
        }
    }

    #[test]
    fn generated_documents_parse_uniquely() {
        let lang = language();
        let mut parser = Parser::new(lang.grammar().clone());
        for seed in 0..10 {
            let src = generate(seed, 150);
            let tokens = lang.tokenize(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
            assert!(
                matches!(parser.parse(&tokens), ParseOutcome::Unique(_)),
                "seed {seed}: {src}"
            );
        }
    }

    #[test]
    fn comments_and_pis_lex_as_single_tokens() {
        let lang = language();
        let tokens = lang.tokenize("<!-- c --><?target data?>").unwrap();
        assert_eq!(tokens.len(), 2);
        let names: Vec<&str> = tokens
            .iter()
            .map(|t| lang.grammar().symbols().terminal_name(t.terminal()))
            .collect();
        assert_eq!(names, vec!["COMMENT", "PI"]);
    }
}
