//! The lexer itself: rule specifications, compilation, and tokenization.
//!
//! A [`LexerSpec`] lists rules in priority order; [`Lexer::compile`] turns
//! them into one minimized DFA; [`Lexer::tokenize`] scans input with the
//! standard maximal-munch discipline (longest match wins, ties broken by
//! rule order) and produces the pre-tokenized word that the CoStar parser
//! consumes (paper §6.1: "CoStar takes pre-tokenized input").

use crate::dfa::{Dfa, DEAD};
use crate::nfa::Nfa;
use crate::regex::{escape_literal, parse_regex, RegexError};
use costar_grammar::{Span, SymbolTable, Terminal, Token};
use std::fmt;
use std::sync::Arc;

/// What to do when a rule matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexAction {
    /// Emit a token classified as the named terminal.
    Emit(String),
    /// Discard the match (whitespace, comments).
    Skip,
}

/// One lexer rule: a name (for diagnostics), a pattern, and an action.
#[derive(Debug, Clone)]
pub struct LexRule {
    name: String,
    pattern: String,
    action: LexAction,
    /// The fixed spelling for literal rules (keywords, punctuation). Such
    /// rules match exactly one string, so the compiled lexer interns the
    /// lexeme once and shares it across every occurrence.
    literal: Option<String>,
}

/// An ordered list of lexer rules. Earlier rules win length ties, so
/// keywords should precede the identifier rule that would also match them.
///
/// # Examples
///
/// ```
/// use costar_lexer::{Lexer, LexerSpec};
/// use costar_grammar::SymbolTable;
///
/// let mut spec = LexerSpec::new();
/// spec.token_literal("If", "if");
/// spec.token("Ident", "[a-z]+");
/// spec.token("Int", "[0-9]+");
/// spec.skip("ws", "[ \\t\\n]+");
///
/// let mut tab = SymbolTable::new();
/// let lexer = Lexer::compile(&spec, &mut tab)?;
/// let toks = lexer.tokenize("if x 42")?;
/// assert_eq!(toks.len(), 3);
/// assert_eq!(tab.terminal_name(toks[0].terminal()), "If");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LexerSpec {
    rules: Vec<LexRule>,
}

impl LexerSpec {
    /// An empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a token rule: matches of `pattern` emit terminal `terminal`.
    pub fn token(&mut self, terminal: &str, pattern: &str) -> &mut Self {
        self.rules.push(LexRule {
            name: terminal.to_owned(),
            pattern: pattern.to_owned(),
            action: LexAction::Emit(terminal.to_owned()),
            literal: None,
        });
        self
    }

    /// Adds a token rule matching a literal spelling (escaped
    /// automatically) — for keywords and punctuation. The spelling is
    /// interned at compile time, so tokenizing does not allocate a fresh
    /// lexeme per occurrence.
    pub fn token_literal(&mut self, terminal: &str, literal: &str) -> &mut Self {
        self.rules.push(LexRule {
            name: terminal.to_owned(),
            pattern: escape_literal(literal),
            action: LexAction::Emit(terminal.to_owned()),
            literal: Some(literal.to_owned()),
        });
        self
    }

    /// Adds a skip rule (whitespace, comments).
    pub fn skip(&mut self, name: &str, pattern: &str) -> &mut Self {
        self.rules.push(LexRule {
            name: name.to_owned(),
            pattern: pattern.to_owned(),
            action: LexAction::Skip,
            literal: None,
        });
        self
    }

    /// The rules, in priority order.
    pub fn rules(&self) -> impl Iterator<Item = (&str, &str, &LexAction)> {
        self.rules
            .iter()
            .map(|r| (r.name.as_str(), r.pattern.as_str(), &r.action))
    }
}

/// Errors arising while compiling a [`LexerSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexerBuildError {
    /// A rule's pattern failed to parse.
    BadPattern {
        /// The rule's name.
        rule: String,
        /// The underlying regex error.
        error: RegexError,
    },
    /// The specification has no rules.
    Empty,
    /// A rule matches the empty string, which would make the scanner loop.
    EmptyMatch {
        /// The rule's name.
        rule: String,
    },
}

impl fmt::Display for LexerBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexerBuildError::BadPattern { rule, error } => {
                write!(f, "rule {rule}: {error}")
            }
            LexerBuildError::Empty => write!(f, "lexer specification has no rules"),
            LexerBuildError::EmptyMatch { rule } => {
                write!(f, "rule {rule} matches the empty string")
            }
        }
    }
}

impl std::error::Error for LexerBuildError {}

/// A tokenization failure: no rule matches at the given byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the first unmatchable input.
    pub at: usize,
    /// A short snippet of the offending input for diagnostics.
    pub snippet: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no token matches at byte {}: {:?}…",
            self.at, self.snippet
        )
    }
}

impl std::error::Error for LexError {}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CompiledAction {
    /// Emit the terminal; for fixed-spelling rules the interned lexeme
    /// rides along so tokenization hands out `Arc` clones, not fresh
    /// allocations.
    Emit(Terminal, Option<Arc<str>>),
    Skip,
}

/// A compiled lexer: one minimized DFA plus per-rule actions.
#[derive(Debug, Clone)]
pub struct Lexer {
    dfa: Dfa,
    pub(crate) actions: Vec<CompiledAction>,
}

/// Advances a 1-based line/column pair over `bytes[range]`, with one byte
/// of lookahead into the full `bytes` slice to classify `\r`.
///
/// Line terminators are `\n`, `\r\n` (counted once, at the `\n`), and a
/// lone `\r` (classic-Mac / stray carriage returns — previously these
/// advanced the column instead of the line). Columns count bytes. Both
/// `Lexer::tokenize` and the incremental scanner call this one helper, so
/// full and spliced lexes agree byte-for-byte on every span.
pub(crate) fn advance_line_col(
    bytes: &[u8],
    range: std::ops::Range<usize>,
    line: &mut u32,
    col: &mut u32,
) {
    for i in range {
        match bytes[i] {
            b'\n' => {
                *line = line.saturating_add(1);
                *col = 1;
            }
            b'\r' if bytes.get(i + 1) == Some(&b'\n') => {
                // First half of a CRLF pair: the `\n` terminates the line;
                // the `\r` still occupies a byte column.
                *col = col.saturating_add(1);
            }
            b'\r' => {
                *line = line.saturating_add(1);
                *col = 1;
            }
            _ => *col = col.saturating_add(1),
        }
    }
}

impl Lexer {
    /// Compiles a specification, interning emitted terminal names in
    /// `symbols` (so the lexer and a grammar built over the same table
    /// agree on terminal identities).
    ///
    /// # Errors
    ///
    /// Returns [`LexerBuildError`] for empty specs, malformed patterns,
    /// or rules that match the empty string.
    pub fn compile(spec: &LexerSpec, symbols: &mut SymbolTable) -> Result<Lexer, LexerBuildError> {
        if spec.rules.is_empty() {
            return Err(LexerBuildError::Empty);
        }
        let mut regexes = Vec::with_capacity(spec.rules.len());
        let mut actions = Vec::with_capacity(spec.rules.len());
        for rule in &spec.rules {
            let re = parse_regex(&rule.pattern).map_err(|error| LexerBuildError::BadPattern {
                rule: rule.name.clone(),
                error,
            })?;
            regexes.push(re);
            actions.push(match &rule.action {
                LexAction::Emit(name) => CompiledAction::Emit(
                    symbols.terminal(name),
                    rule.literal.as_deref().map(Arc::from),
                ),
                LexAction::Skip => CompiledAction::Skip,
            });
        }
        let dfa = Dfa::from_nfa(&Nfa::compile(&regexes));
        // A start-state accept means some rule matches ε.
        if let Some(r) = dfa.accept[dfa.start as usize] {
            return Err(LexerBuildError::EmptyMatch {
                rule: spec.rules[r].name.clone(),
            });
        }
        Ok(Lexer { dfa, actions })
    }

    /// Scans `input` into tokens using maximal munch.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] at the first position where no rule matches.
    pub fn tokenize(&self, input: &str) -> Result<Vec<Token>, LexError> {
        let bytes = input.as_bytes();
        let mut tokens = Vec::new();
        let mut pos = 0usize;
        // 1-based line/column of `pos`, maintained incrementally so every
        // token carries a full source span for diagnostics.
        let mut line = 1u32;
        let mut col = 1u32;
        while pos < bytes.len() {
            let (len, _reach, token) = self.scan_one(input, pos, line, col)?;
            if let Some(t) = token {
                tokens.push(t);
            }
            advance_line_col(bytes, pos..pos + len, &mut line, &mut col);
            pos += len;
        }
        Ok(tokens)
    }

    /// One maximal-munch scan step at byte `pos` of `source`, given the
    /// 1-based line/column of `pos`. Returns the match length, the
    /// absolute reach (see [`Lexer::longest_match_with_reach`]), and the
    /// emitted token, if the winning rule emits one.
    ///
    /// Both [`Lexer::tokenize`] and the incremental [`crate::EditSession`]
    /// scan through this single primitive, which is what makes spliced
    /// token vectors byte-identical to from-scratch lexes: there is only
    /// one definition of a scan step.
    pub(crate) fn scan_one(
        &self,
        source: &str,
        pos: usize,
        line: u32,
        col: u32,
    ) -> Result<(usize, usize, Option<Token>), LexError> {
        let bytes = source.as_bytes();
        let (m, reach) = self.longest_match_with_reach(&bytes[pos..]);
        let (len, rule) = m.ok_or_else(|| LexError {
            at: pos,
            snippet: source[pos..].chars().take(12).collect(),
        })?;
        debug_assert!(len > 0, "empty matches rejected at compile time");
        let token = match &self.actions[rule] {
            CompiledAction::Emit(t, lit) => {
                let span = Span::new(pos, len, line, col);
                Some(match lit {
                    Some(shared) => Token::with_shared_lexeme(*t, Arc::clone(shared), span),
                    None => Token::with_span(*t, &source[pos..pos + len], span),
                })
            }
            CompiledAction::Skip => None,
        };
        Ok((len, pos.saturating_add(reach), token))
    }

    /// Maximal-munch scan of a prefix of `input`, additionally reporting
    /// the scan's *reach*: the exclusive end of the byte range the DFA
    /// examined before committing to the match.
    ///
    /// The reach is the incremental lexer's damage-tracking currency: a
    /// token boundary is a safe restart point only if no earlier scan step
    /// reached past it. When the DFA dies at byte `i` the reach is `i + 1`
    /// (the killing byte was examined); when input ends while the DFA is
    /// still alive the reach is `input.len() + 1` — a sentinel recording
    /// that appending bytes could extend the match.
    pub(crate) fn longest_match_with_reach(&self, input: &[u8]) -> (Option<(usize, usize)>, usize) {
        let mut state = self.dfa.start;
        let mut best: Option<(usize, usize)> = None;
        let mut reach = input.len().saturating_add(1);
        for (i, &b) in input.iter().enumerate() {
            state = self.dfa.step(state, b);
            if state == DEAD {
                reach = i + 1;
                break;
            }
            if let Some(rule) = self.dfa.accept[state as usize] {
                best = Some((i + 1, rule));
            }
        }
        (best, reach)
    }

    /// Number of DFA states (after minimization) — exposed for the
    /// evaluation harness's substrate statistics.
    pub fn num_states(&self) -> usize {
        self.dfa.num_states()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    fn simple_lexer() -> (Lexer, SymbolTable) {
        let mut spec = LexerSpec::new();
        spec.token_literal("If", "if");
        spec.token_literal("LParen", "(");
        spec.token_literal("RParen", ")");
        spec.token_literal("EqEq", "==");
        spec.token_literal("Eq", "=");
        spec.token("Ident", "[a-z][a-z0-9_]*");
        spec.token("Int", "[0-9]+");
        spec.skip("ws", "[ \\t\\r\\n]+");
        spec.skip("comment", "#[^\\n]*");
        let mut tab = SymbolTable::new();
        let lexer = Lexer::compile(&spec, &mut tab).unwrap();
        (lexer, tab)
    }

    fn kinds(lexer: &Lexer, tab: &SymbolTable, input: &str) -> Vec<String> {
        lexer
            .tokenize(input)
            .unwrap()
            .iter()
            .map(|t| tab.terminal_name(t.terminal()).to_owned())
            .collect()
    }

    #[test]
    fn basic_tokenization() {
        let (lexer, tab) = simple_lexer();
        assert_eq!(
            kinds(&lexer, &tab, "if (x == 42)"),
            vec!["If", "LParen", "Ident", "EqEq", "Int", "RParen"]
        );
    }

    #[test]
    fn maximal_munch_prefers_longer() {
        let (lexer, tab) = simple_lexer();
        // "==" must lex as EqEq, not Eq Eq; "iffy" as Ident, not If + fy.
        assert_eq!(kinds(&lexer, &tab, "=="), vec!["EqEq"]);
        assert_eq!(kinds(&lexer, &tab, "= ="), vec!["Eq", "Eq"]);
        assert_eq!(kinds(&lexer, &tab, "iffy"), vec!["Ident"]);
        assert_eq!(kinds(&lexer, &tab, "if fy"), vec!["If", "Ident"]);
    }

    #[test]
    fn rule_order_breaks_ties() {
        let (lexer, tab) = simple_lexer();
        // "if" matches both If (rule 0) and Ident; If wins.
        assert_eq!(kinds(&lexer, &tab, "if"), vec!["If"]);
    }

    #[test]
    fn skip_rules_drop_content() {
        let (lexer, tab) = simple_lexer();
        assert_eq!(
            kinds(&lexer, &tab, "x # trailing comment\ny"),
            vec!["Ident", "Ident"]
        );
        assert_eq!(lexer.tokenize("   \t\n").unwrap(), vec![]);
    }

    #[test]
    fn offsets_and_lexemes_recorded() {
        let (lexer, _) = simple_lexer();
        let toks = lexer.tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].lexeme(), "ab");
        assert_eq!(toks[0].offset(), 0);
        assert_eq!(toks[1].lexeme(), "cd");
        assert_eq!(toks[1].offset(), 4);
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let (lexer, _) = simple_lexer();
        let toks = lexer.tokenize("ab cd\n  x42\nif").unwrap();
        let spans: Vec<(u32, u32, usize)> = toks
            .iter()
            .map(|t| (t.span().line, t.span().col, t.span().len))
            .collect();
        assert_eq!(spans, vec![(1, 1, 2), (1, 4, 2), (2, 3, 3), (3, 1, 2)]);
        assert!(toks.iter().all(|t| t.span().has_position()));
        // Skipped trivia (comments) still advances lines.
        let toks = lexer.tokenize("x # note\ny").unwrap();
        assert_eq!(toks[1].span().line, 2);
        assert_eq!(toks[1].span().col, 1);
    }

    #[test]
    fn lex_error_has_position() {
        let (lexer, _) = simple_lexer();
        let err = lexer.tokenize("ab £x").unwrap_err();
        assert_eq!(err.at, 3);
        assert!(err.to_string().contains("byte 3"));
    }

    #[test]
    fn empty_matching_rule_rejected() {
        let mut spec = LexerSpec::new();
        spec.token("Star", "a*");
        let mut tab = SymbolTable::new();
        let err = Lexer::compile(&spec, &mut tab).unwrap_err();
        assert!(matches!(err, LexerBuildError::EmptyMatch { .. }));
    }

    #[test]
    fn bad_pattern_reported_with_rule_name() {
        let mut spec = LexerSpec::new();
        spec.token("Broken", "[a-");
        let mut tab = SymbolTable::new();
        let err = Lexer::compile(&spec, &mut tab).unwrap_err();
        let LexerBuildError::BadPattern { rule, .. } = err else {
            panic!("expected BadPattern")
        };
        assert_eq!(rule, "Broken");
    }

    #[test]
    fn empty_spec_rejected() {
        let mut tab = SymbolTable::new();
        assert_eq!(
            Lexer::compile(&LexerSpec::new(), &mut tab).unwrap_err(),
            LexerBuildError::Empty
        );
    }

    #[test]
    fn crlf_line_endings_count_once() {
        let (lexer, _) = simple_lexer();
        // `\r\n` is one line terminator: tokens after it start at col 1 of
        // the next line, and the pair never double-counts.
        let toks = lexer.tokenize("ab cd\r\nif x\r\n42").unwrap();
        let spans: Vec<(u32, u32)> = toks.iter().map(|t| (t.span().line, t.span().col)).collect();
        assert_eq!(spans, vec![(1, 1), (1, 4), (2, 1), (2, 4), (3, 1)]);
    }

    #[test]
    fn lone_carriage_return_terminates_a_line() {
        let (lexer, _) = simple_lexer();
        // Classic-Mac `\r` endings: previously these advanced the column
        // instead of the line, so `cd` reported line 1, column 4.
        let toks = lexer.tokenize("ab\rcd").unwrap();
        assert_eq!(toks[1].span().line, 2);
        assert_eq!(toks[1].span().col, 1);
    }

    #[test]
    fn final_line_without_trailing_newline_has_spans() {
        let (lexer, _) = simple_lexer();
        let toks = lexer.tokenize("ab\r\ncd ef").unwrap();
        let last = toks.last().unwrap();
        assert_eq!((last.span().line, last.span().col), (2, 4));
        assert_eq!(last.lexeme(), "ef");
        // Same source with a trailing terminator: identical spans.
        let with_nl = lexer.tokenize("ab\r\ncd ef\r\n").unwrap();
        assert_eq!(toks, with_nl);
    }

    #[test]
    fn fixed_lexeme_tokens_share_one_interned_allocation() {
        let (lexer, _) = simple_lexer();
        let toks = lexer.tokenize("if (if) if").unwrap();
        let ifs: Vec<&Token> = toks.iter().filter(|t| t.lexeme() == "if").collect();
        assert_eq!(ifs.len(), 3);
        assert!(std::ptr::eq(
            ifs[0].lexeme().as_ptr(),
            ifs[2].lexeme().as_ptr()
        ));
        // Pattern-matched lexemes are still fresh per occurrence.
        let nums = lexer.tokenize("1 1").unwrap();
        assert!(!std::ptr::eq(
            nums[0].lexeme().as_ptr(),
            nums[1].lexeme().as_ptr()
        ));
    }

    #[test]
    fn terminals_are_interned_in_shared_table() {
        let (_, tab) = simple_lexer();
        assert!(tab.lookup_terminal("If").is_some());
        assert!(tab.lookup_terminal("Int").is_some());
        assert!(
            tab.lookup_terminal("ws").is_none(),
            "skip rules intern nothing"
        );
    }
}
