//! Thompson construction: regular expressions to a nondeterministic
//! finite automaton with ε-transitions.
//!
//! Several rules are compiled into *one* NFA with a shared start state;
//! each rule's accept state carries the rule's index as a priority tag, so
//! the downstream DFA can implement the lexer-generator convention
//! "longest match wins; ties go to the earliest rule".

use crate::regex::{ByteSet, Regex};

/// A state's outgoing edges.
#[derive(Debug, Clone, Default)]
pub(crate) struct NfaState {
    /// Byte-labeled transitions.
    pub edges: Vec<(ByteSet, usize)>,
    /// ε-transitions.
    pub eps: Vec<usize>,
    /// Accepting rule index (lower = higher priority), if any.
    pub accept: Option<usize>,
}

/// An NFA over bytes with rule-tagged accept states.
#[derive(Debug, Clone)]
pub(crate) struct Nfa {
    pub states: Vec<NfaState>,
    pub start: usize,
}

impl Nfa {
    /// Builds a combined NFA for a list of rule patterns. Rule `i`'s
    /// accept states are tagged `i`.
    pub fn compile(rules: &[Regex]) -> Nfa {
        let mut nfa = Nfa {
            states: vec![NfaState::default()],
            start: 0,
        };
        for (i, re) in rules.iter().enumerate() {
            let (s, e) = nfa.add(re);
            nfa.states[0].eps.push(s);
            nfa.states[e].accept = Some(i);
        }
        nfa
    }

    fn new_state(&mut self) -> usize {
        self.states.push(NfaState::default());
        self.states.len() - 1
    }

    /// Thompson construction: returns (entry, exit) states for `re`.
    fn add(&mut self, re: &Regex) -> (usize, usize) {
        match re {
            Regex::Empty => {
                let s = self.new_state();
                (s, s)
            }
            Regex::Class(set) => {
                let s = self.new_state();
                let e = self.new_state();
                self.states[s].edges.push((*set, e));
                (s, e)
            }
            Regex::Concat(parts) => {
                let mut entry: Option<usize> = None;
                let mut last_exit: Option<usize> = None;
                for p in parts {
                    let (s, e) = self.add(p);
                    if let Some(prev) = last_exit {
                        self.states[prev].eps.push(s);
                    } else {
                        entry = Some(s);
                    }
                    last_exit = Some(e);
                }
                match (entry, last_exit) {
                    (Some(s), Some(e)) => (s, e),
                    _ => {
                        let s = self.new_state();
                        (s, s)
                    }
                }
            }
            Regex::Alt(alts) => {
                let s = self.new_state();
                let e = self.new_state();
                for a in alts {
                    let (as_, ae) = self.add(a);
                    self.states[s].eps.push(as_);
                    self.states[ae].eps.push(e);
                }
                (s, e)
            }
            Regex::Star(inner) => {
                let s = self.new_state();
                let e = self.new_state();
                let (is, ie) = self.add(inner);
                self.states[s].eps.push(is);
                self.states[s].eps.push(e);
                self.states[ie].eps.push(is);
                self.states[ie].eps.push(e);
                (s, e)
            }
            Regex::Plus(inner) => {
                let (is, ie) = self.add(inner);
                let e = self.new_state();
                self.states[ie].eps.push(is);
                self.states[ie].eps.push(e);
                (is, e)
            }
            Regex::Opt(inner) => {
                let s = self.new_state();
                let e = self.new_state();
                let (is, ie) = self.add(inner);
                self.states[s].eps.push(is);
                self.states[s].eps.push(e);
                self.states[ie].eps.push(e);
                (s, e)
            }
        }
    }

    /// ε-closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, states: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<usize> = states.to_vec();
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            out.push(s);
            for &t in &self.states[s].eps {
                stack.push(t);
            }
        }
        out.sort_unstable();
        out
    }

    /// The highest-priority (lowest-index) accept tag in a state set.
    pub fn accept_of(&self, states: &[usize]) -> Option<usize> {
        states.iter().filter_map(|&s| self.states[s].accept).min()
    }

    /// All states reachable from `states` on byte `b`.
    pub fn step(&self, states: &[usize], b: u8) -> Vec<usize> {
        let mut out = Vec::new();
        for &s in states {
            for (set, t) in &self.states[s].edges {
                if set.contains(b) {
                    out.push(*t);
                }
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::regex::parse_regex;

    /// Simulates the NFA directly on an input (test oracle for the DFA).
    fn nfa_matches(nfa: &Nfa, input: &[u8]) -> Option<usize> {
        let mut cur = nfa.eps_closure(&[nfa.start]);
        for &b in input {
            cur = nfa.eps_closure(&nfa.step(&cur, b));
            if cur.is_empty() {
                return None;
            }
        }
        nfa.accept_of(&cur)
    }

    fn single(pattern: &str) -> Nfa {
        Nfa::compile(&[parse_regex(pattern).unwrap()])
    }

    #[test]
    fn literal_match() {
        let nfa = single("abc");
        assert_eq!(nfa_matches(&nfa, b"abc"), Some(0));
        assert_eq!(nfa_matches(&nfa, b"ab"), None);
        assert_eq!(nfa_matches(&nfa, b"abd"), None);
    }

    #[test]
    fn star_matches_zero_or_more() {
        let nfa = single("a*b");
        for input in ["b", "ab", "aaab"] {
            assert_eq!(nfa_matches(&nfa, input.as_bytes()), Some(0), "{input}");
        }
        assert_eq!(nfa_matches(&nfa, b"a"), None);
    }

    #[test]
    fn plus_requires_one() {
        let nfa = single("a+");
        assert_eq!(nfa_matches(&nfa, b""), None);
        assert_eq!(nfa_matches(&nfa, b"a"), Some(0));
        assert_eq!(nfa_matches(&nfa, b"aaaa"), Some(0));
    }

    #[test]
    fn opt_matches_both() {
        let nfa = single("ab?c");
        assert_eq!(nfa_matches(&nfa, b"ac"), Some(0));
        assert_eq!(nfa_matches(&nfa, b"abc"), Some(0));
        assert_eq!(nfa_matches(&nfa, b"abbc"), None);
    }

    #[test]
    fn alternation_and_groups() {
        let nfa = single("(ab|cd)+");
        assert_eq!(nfa_matches(&nfa, b"abcdab"), Some(0));
        assert_eq!(nfa_matches(&nfa, b"abc"), None);
    }

    #[test]
    fn priority_goes_to_earlier_rule() {
        // Both rules match "if": the earlier (keyword) rule wins.
        let rules = [parse_regex("if").unwrap(), parse_regex("[a-z]+").unwrap()];
        let nfa = Nfa::compile(&rules);
        assert_eq!(nfa_matches(&nfa, b"if"), Some(0));
        assert_eq!(nfa_matches(&nfa, b"iff"), Some(1));
        assert_eq!(nfa_matches(&nfa, b"x"), Some(1));
    }

    #[test]
    fn empty_regex_accepts_empty() {
        let nfa = single("");
        assert_eq!(nfa_matches(&nfa, b""), Some(0));
        assert_eq!(nfa_matches(&nfa, b"a"), None);
    }
}
