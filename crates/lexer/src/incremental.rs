//! Incremental lexing: edit sessions, damage tracking, and token splicing.
//!
//! An [`EditSession`] remembers the previous source text, its token
//! vector, and the per-step DFA restart metadata recorded during the last
//! scan. Applying an [`Edit`] re-lexes only the damaged region:
//!
//! 1. **Restart** — rewind to the nearest *safe* scan boundary at or
//!    before the edit. A boundary `b` is safe when no earlier scan step's
//!    *reach* (the exclusive end of the bytes the DFA examined, including
//!    the byte that killed it) extends past the edit start: every step
//!    before `b` then made its match decision from bytes the edit cannot
//!    have changed, so a from-scratch lex of the new text reproduces the
//!    prefix exactly.
//! 2. **Resync** — scan forward from the restart point over the new text.
//!    Because every scan step restarts the DFA in its start state, the
//!    tokenization of the text after position `p` depends only on the
//!    bytes from `p` onward. So as soon as the scanner lands on a position
//!    past the replaced region that maps (by the edit's byte delta) onto a
//!    scan boundary of the *old* text, the rest of the old scan replays
//!    verbatim and scanning can stop.
//! 3. **Splice** — stitch `prefix tokens ++ fresh tokens ++ rebased
//!    suffix tokens`. Suffix spans shift by the constant byte delta; lines
//!    shift by the constant line delta; columns shift only for tokens
//!    still on the resync point's old line (after the first unchanged line
//!    terminator, column arithmetic is untouched).
//!
//! The harness `H-INCR-LEX-SOUND` (crate `costar-verify`) checks the
//! resulting token vector byte-identical — kind, lexeme, and span —
//! against a from-scratch lex of the edited source, under proptest and a
//! bounded kani proof.

use crate::lexer::advance_line_col;
use crate::{LexError, Lexer};
use costar_grammar::{Span, Token};
use std::fmt;
use std::ops::Range;
#[cfg(not(kani))]
use std::time::Instant;

/// Wall-clock anchor for the relex timer; under kani (which cannot model
/// `Instant::now`) timing degrades to zero.
#[cfg(not(kani))]
type Timer = Instant;
#[cfg(kani)]
type Timer = ();

fn timer_start() -> Timer {
    #[cfg(not(kani))]
    {
        Instant::now()
    }
}

fn micros_since(_t0: Timer) -> u64 {
    #[cfg(not(kani))]
    {
        u64::try_from(_t0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
    #[cfg(kani)]
    {
        0
    }
}

/// A source edit: replace the bytes in `range` with `replacement`.
///
/// `range` is a byte range into the session's *current* source; an empty
/// range is a pure insertion, an empty `replacement` a pure deletion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Byte range of the current source to replace.
    pub range: Range<usize>,
    /// Replacement text (may be empty).
    pub replacement: String,
}

impl Edit {
    /// Convenience constructor.
    pub fn new(range: Range<usize>, replacement: impl Into<String>) -> Self {
        Edit {
            range,
            replacement: replacement.into(),
        }
    }

    /// Validates this edit against `source` (bounds, ordering, UTF-8 char
    /// boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`EditError::OutOfBounds`] or [`EditError::NotCharBoundary`].
    pub fn validate(&self, source: &str) -> Result<(), EditError> {
        let (start, end) = (self.range.start, self.range.end);
        if start > end || end > source.len() {
            return Err(EditError::OutOfBounds {
                start,
                end,
                source_len: source.len(),
            });
        }
        for offset in [start, end] {
            if !source.is_char_boundary(offset) {
                return Err(EditError::NotCharBoundary { offset });
            }
        }
        Ok(())
    }

    /// Applies this edit to `source`, returning the edited text. This is
    /// the from-scratch reference the splice path is checked against.
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] if the edit does not validate against `source`.
    pub fn apply_to(&self, source: &str) -> Result<String, EditError> {
        self.validate(source)?;
        let mut out = String::with_capacity(
            source.len() - (self.range.end - self.range.start) + self.replacement.len(),
        );
        out.push_str(&source[..self.range.start]);
        out.push_str(&self.replacement);
        out.push_str(&source[self.range.end..]);
        Ok(out)
    }
}

/// Errors from [`EditSession::apply`]. Invalid edits are rejected with a
/// typed error and leave the session untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The edit range is reversed or extends past the end of the source.
    OutOfBounds {
        /// Range start of the offending edit.
        start: usize,
        /// Range end of the offending edit.
        end: usize,
        /// Length of the session source the edit was applied to.
        source_len: usize,
    },
    /// An edit endpoint falls inside a multi-byte UTF-8 character.
    NotCharBoundary {
        /// The offending byte offset.
        offset: usize,
    },
    /// The edited source fails to lex; carries the position where no rule
    /// matches, exactly as a from-scratch lex of the edited text would
    /// report it.
    Lex(LexError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::OutOfBounds {
                start,
                end,
                source_len,
            } => write!(
                f,
                "edit range {start}..{end} is outside the source (len {source_len})"
            ),
            EditError::NotCharBoundary { offset } => {
                write!(f, "edit offset {offset} splits a UTF-8 character")
            }
            EditError::Lex(e) => write!(f, "edited source fails to lex: {e}"),
        }
    }
}

impl std::error::Error for EditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EditError::Lex(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LexError> for EditError {
    fn from(e: LexError) -> Self {
        EditError::Lex(e)
    }
}

/// What one [`EditSession::apply`] did: the damage window, the work saved,
/// and whether the spliced token vector is byte-identical to the previous
/// one (so a cached parse outcome can be reused outright).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceReport {
    /// Tokens produced by re-lexing the damaged region.
    pub tokens_relexed: usize,
    /// Old tokens carried over (prefix + rebased suffix).
    pub tokens_reused: usize,
    /// Bytes scanned between restart and resync.
    pub relexed_bytes: usize,
    /// Byte offset (in the new source) scanning restarted from.
    pub restart_offset: usize,
    /// Byte offset (in the new source) where the scan re-synchronized
    /// with the old token stream; `None` means it re-lexed to EOF.
    pub resync_offset: Option<usize>,
    /// `true` when the spliced token vector — kind, lexeme, and span —
    /// is byte-identical to the pre-edit vector (e.g. an edit confined
    /// to skipped trivia of unchanged width).
    pub unchanged: bool,
    /// Wall-clock time of the incremental re-lex, in microseconds.
    pub relex_micros: u64,
}

/// One recorded scan step of the previous lex: the boundary where the DFA
/// restarted, how far that step's match examination reached, and the
/// token/line/column state at the boundary. The final entry is an EOF
/// sentinel (`start == source.len()`).
#[derive(Debug, Clone, Copy)]
struct Boundary {
    /// Byte offset where this scan step started.
    start: usize,
    /// Exclusive end of the bytes this step examined (absolute);
    /// `source.len() + 1` when input ended while the DFA was still alive.
    reach: usize,
    /// Max `reach` over all steps strictly before this boundary
    /// (monotone in the boundary index).
    prefix_max: usize,
    /// Number of tokens emitted before this boundary.
    token_index: usize,
    /// 1-based line of `start`.
    line: u32,
    /// 1-based byte column of `start`.
    col: u32,
}

/// An incremental lexing session: the current source, its token vector,
/// and the scan-boundary metadata needed to re-lex only edited regions.
///
/// # Examples
///
/// ```
/// use costar_lexer::{Edit, EditSession, Lexer, LexerSpec};
/// use costar_grammar::SymbolTable;
///
/// let mut spec = LexerSpec::new();
/// spec.token("Ident", "[a-z]+").token("Int", "[0-9]+").skip("ws", " +");
/// let mut tab = SymbolTable::new();
/// let lexer = Lexer::compile(&spec, &mut tab)?;
///
/// let mut session = EditSession::new(&lexer, "abc 42 xyz")?;
/// let report = session.apply(&Edit::new(4..6, "777"))?;
/// assert_eq!(session.source(), "abc 777 xyz");
/// assert_eq!(session.tokens(), &lexer.tokenize("abc 777 xyz")?[..]);
/// assert!(report.tokens_reused > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct EditSession {
    lexer: Lexer,
    source: String,
    tokens: Vec<Token>,
    bounds: Vec<Boundary>,
}

impl EditSession {
    /// Starts a session by fully lexing `source` and recording restart
    /// metadata for every scan step.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] if `source` does not lex.
    pub fn new(lexer: &Lexer, source: &str) -> Result<EditSession, LexError> {
        let bytes = source.as_bytes();
        let mut tokens = Vec::new();
        let mut bounds = Vec::new();
        let (mut pos, mut line, mut col) = (0usize, 1u32, 1u32);
        let mut prefix_max = 0usize;
        while pos < bytes.len() {
            let (len, reach, token) = lexer.scan_one(source, pos, line, col)?;
            bounds.push(Boundary {
                start: pos,
                reach,
                prefix_max,
                token_index: tokens.len(),
                line,
                col,
            });
            prefix_max = prefix_max.max(reach);
            if let Some(t) = token {
                tokens.push(t);
            }
            advance_line_col(bytes, pos..pos + len, &mut line, &mut col);
            pos += len;
        }
        bounds.push(Boundary {
            start: pos,
            reach: pos,
            prefix_max,
            token_index: tokens.len(),
            line,
            col,
        });
        Ok(EditSession {
            lexer: lexer.clone(),
            source: source.to_owned(),
            tokens,
            bounds,
        })
    }

    /// The current source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The current token vector — always equal to a from-scratch
    /// `lexer.tokenize(self.source())`.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The lexer this session scans with.
    pub fn lexer(&self) -> &Lexer {
        &self.lexer
    }

    /// Applies `edit`, re-lexing only the damaged region and splicing the
    /// result into the token vector. On error the session is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`EditError`] for invalid ranges, offsets inside a UTF-8
    /// character, or an edited source that no longer lexes.
    pub fn apply(&mut self, edit: &Edit) -> Result<SpliceReport, EditError> {
        let t0 = timer_start();
        edit.validate(&self.source)?;
        let (start, end) = (edit.range.start, edit.range.end);
        let delta = edit.replacement.len() as isize - (end - start) as isize;

        let mut new_source =
            String::with_capacity((self.source.len() as isize + delta).unsigned_abs());
        new_source.push_str(&self.source[..start]);
        new_source.push_str(&edit.replacement);
        new_source.push_str(&self.source[end..]);
        let nbytes = new_source.as_bytes();
        let new_end = start + edit.replacement.len();
        let old_bytes = self.source.as_bytes();

        // --- Restart: largest boundary `b <= start` none of whose earlier
        // steps reached past `start`. `prefix_max` is monotone in the
        // boundary index, so walking backwards terminates at index 0
        // (whose prefix_max is 0). The extra `\r` guard covers the one
        // byte of lookahead line counting uses: a boundary *at* the edit
        // start whose preceding byte is `\r` recorded a line/column that
        // depended on the first replaced byte.
        let mut bi = self.bounds.partition_point(|b| b.start <= start) - 1;
        while self.bounds[bi].prefix_max > start {
            bi -= 1;
        }
        if self.bounds[bi].start == start && start > 0 && old_bytes[start - 1] == b'\r' && bi > 0 {
            bi -= 1;
        }
        let restart = self.bounds[bi];

        // --- Scan forward until resync (or EOF), collecting fresh tokens
        // and fresh boundary metadata. All failure paths are exhausted in
        // this phase; the session mutates only after it succeeds.
        let mut fresh_tokens: Vec<Token> = Vec::new();
        let mut fresh_bounds: Vec<Boundary> = Vec::new();
        let mut running_max = restart.prefix_max;
        let (mut pos, mut line, mut col) = (restart.start, restart.line, restart.col);
        // (new-source offset, old boundary index) where the scan rejoined
        // the previous lex.
        let mut resync: Option<(usize, usize)> = None;
        while pos < nbytes.len() {
            if pos >= new_end {
                // A position past the replaced region maps onto the old
                // text at `pos - delta`; if that was a scan boundary, the
                // old scan replays verbatim from here (each step restarts
                // the DFA, so lexing past `pos` depends only on the
                // unchanged suffix bytes).
                let old_pos = (pos as isize - delta) as usize;
                if let Ok(j) = self.bounds.binary_search_by(|b| b.start.cmp(&old_pos)) {
                    resync = Some((pos, j));
                    break;
                }
            }
            let (len, reach, token) = self
                .lexer
                .scan_one(&new_source, pos, line, col)
                .map_err(EditError::Lex)?;
            fresh_bounds.push(Boundary {
                start: pos,
                reach,
                prefix_max: running_max,
                token_index: restart.token_index + fresh_tokens.len(),
                line,
                col,
            });
            running_max = running_max.max(reach);
            if let Some(t) = token {
                fresh_tokens.push(t);
            }
            advance_line_col(nbytes, pos..pos + len, &mut line, &mut col);
            pos += len;
        }

        // --- Splice (infallible from here on).
        let prefix_tokens = restart.token_index;
        let relexed_bytes = pos - restart.start;
        let tokens_relexed = fresh_tokens.len();
        let report = match resync {
            Some((resync_pos, j)) => {
                let old = self.bounds[j];
                let dline = i64::from(line) - i64::from(old.line);
                let dcol = i64::from(col) - i64::from(old.col);
                let suffix_tokens = self.tokens.len() - old.token_index;
                // Byte-identical ⟺ the damage window re-lexed to the same
                // tokens AND no downstream span moves (no downstream
                // tokens, or all three rebase deltas are zero).
                let suffix_unaffected =
                    suffix_tokens == 0 || (delta == 0 && dline == 0 && dcol == 0);
                let unchanged = suffix_unaffected
                    && fresh_tokens[..] == self.tokens[prefix_tokens..old.token_index];

                // Token vector: replace the damaged window, then rebase
                // the suffix spans (offset by `delta`; line by `dline`;
                // column by `dcol` only while still on the resync point's
                // old line — the first unchanged line terminator makes
                // later columns independent of the edit).
                let fresh_count = fresh_tokens.len();
                self.tokens
                    .splice(prefix_tokens..old.token_index, fresh_tokens);
                if delta != 0 || dline != 0 || dcol != 0 {
                    for t in &mut self.tokens[prefix_tokens + fresh_count..] {
                        let s = t.span();
                        t.set_span(Span::new(
                            (s.offset as isize + delta) as usize,
                            s.len,
                            rebase(s.line, dline),
                            if s.line == old.line {
                                rebase(s.col, dcol)
                            } else {
                                s.col
                            },
                        ));
                    }
                }

                // Boundary metadata: prefix ++ fresh ++ rebased suffix,
                // with `prefix_max` recomputed across the new middle.
                let token_shift = prefix_tokens + fresh_count;
                let mut bounds =
                    Vec::with_capacity(bi + fresh_bounds.len() + (self.bounds.len() - j));
                bounds.extend_from_slice(&self.bounds[..bi]);
                bounds.extend(fresh_bounds);
                for ob in &self.bounds[j..] {
                    let b = Boundary {
                        start: (ob.start as isize + delta) as usize,
                        reach: (ob.reach as isize + delta) as usize,
                        prefix_max: running_max,
                        token_index: ob.token_index - old.token_index + token_shift,
                        line: rebase(ob.line, dline),
                        col: if ob.line == old.line {
                            rebase(ob.col, dcol)
                        } else {
                            ob.col
                        },
                    };
                    running_max = running_max.max(b.reach);
                    bounds.push(b);
                }
                self.bounds = bounds;

                SpliceReport {
                    tokens_relexed,
                    tokens_reused: prefix_tokens + suffix_tokens,
                    relexed_bytes,
                    restart_offset: restart.start,
                    resync_offset: Some(resync_pos),
                    unchanged,
                    relex_micros: micros_since(t0),
                }
            }
            None => {
                // Re-lexed to EOF: everything from the restart point is
                // fresh, so token-vector identity is just window equality
                // (slice equality covers spans).
                let unchanged = fresh_tokens[..] == self.tokens[prefix_tokens..];
                self.tokens.truncate(prefix_tokens);
                self.tokens.extend(fresh_tokens);
                self.bounds.truncate(bi);
                self.bounds.extend(fresh_bounds);
                self.bounds.push(Boundary {
                    start: pos,
                    reach: pos,
                    prefix_max: running_max,
                    token_index: self.tokens.len(),
                    line,
                    col,
                });
                SpliceReport {
                    tokens_relexed,
                    tokens_reused: prefix_tokens,
                    relexed_bytes,
                    restart_offset: restart.start,
                    resync_offset: None,
                    unchanged,
                    relex_micros: micros_since(t0),
                }
            }
        };
        self.source = new_source;
        Ok(report)
    }
}

/// Shifts a 1-based line/column by a signed delta, clamping at 1 (the
/// deltas are exact for any source that has not saturated a `u32`).
fn rebase(value: u32, delta: i64) -> u32 {
    let shifted = i64::from(value) + delta;
    u32::try_from(shifted).unwrap_or(if shifted < 1 { 1 } else { u32::MAX })
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::LexerSpec;
    use costar_grammar::SymbolTable;

    fn simple_lexer() -> Lexer {
        let mut spec = LexerSpec::new();
        spec.token_literal("If", "if");
        spec.token_literal("LParen", "(");
        spec.token_literal("RParen", ")");
        spec.token_literal("EqEq", "==");
        spec.token_literal("Eq", "=");
        spec.token("Ident", "[a-z][a-z0-9_]*");
        spec.token("Int", "[0-9]+");
        spec.skip("ws", "[ \\t\\r\\n]+");
        spec.skip("comment", "#[^\\n]*");
        let mut tab = SymbolTable::new();
        Lexer::compile(&spec, &mut tab).unwrap()
    }

    /// Applies `edit` both incrementally and from scratch and asserts the
    /// token vectors (kind, lexeme, span) are byte-identical.
    fn check(session: &mut EditSession, edit: Edit) -> SpliceReport {
        let expected_src = edit.apply_to(session.source()).unwrap();
        let report = session.apply(&edit).unwrap();
        assert_eq!(session.source(), expected_src);
        let oracle = session.lexer().tokenize(&expected_src).unwrap();
        assert_eq!(
            session.tokens(),
            &oracle[..],
            "splice diverged from full relex"
        );
        report
    }

    #[test]
    fn single_token_edit_resyncs_quickly() {
        let lexer = simple_lexer();
        let src = "if (x == 42)\nfoo = bar1\nbaz = 7\n";
        let mut s = EditSession::new(&lexer, src).unwrap();
        let report = check(&mut s, Edit::new(8..10, "43"));
        assert!(report.resync_offset.is_some());
        assert!(
            report.tokens_relexed <= 3,
            "relexed {}",
            report.tokens_relexed
        );
        assert!(report.tokens_reused >= 10);
        assert!(!report.unchanged);
    }

    #[test]
    fn trivia_edit_of_equal_width_reports_unchanged() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "a = b").unwrap();
        // Swap a space for a tab: same widths, same tokens, same spans.
        let report = check(&mut s, Edit::new(1..2, "\t"));
        assert!(report.unchanged);
    }

    #[test]
    fn pure_deletion_merges_adjacent_tokens() {
        let lexer = simple_lexer();
        // Deleting the middle space merges `= =` into `==` — the restart
        // logic must rewind past the first `=` whose scan reached into
        // the deleted byte.
        let mut s = EditSession::new(&lexer, "a = = b").unwrap();
        let report = check(&mut s, Edit::new(3..4, ""));
        assert_eq!(report.resync_offset, Some(4));
        assert_eq!(s.tokens().len(), 3);
        assert_eq!(s.tokens()[1].lexeme(), "==");
    }

    #[test]
    fn insertion_at_offset_zero() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "x = 1\n").unwrap();
        let report = check(&mut s, Edit::new(0..0, "if "));
        assert_eq!(report.restart_offset, 0);
        assert_eq!(s.tokens()[0].lexeme(), "if");
    }

    #[test]
    fn edit_past_eof_rejected_with_typed_error() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "abc").unwrap();
        let before = s.tokens().to_vec();
        let err = s.apply(&Edit::new(2..9, "x")).unwrap_err();
        assert_eq!(
            err,
            EditError::OutOfBounds {
                start: 2,
                end: 9,
                source_len: 3
            }
        );
        // Reversed ranges are typed errors too, and the session is
        // intact. The empty range is the point of the test.
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = Edit::new(2..1, "x");
        assert!(matches!(
            s.apply(&reversed).unwrap_err(),
            EditError::OutOfBounds { .. }
        ));
        assert_eq!(s.tokens(), &before[..]);
        assert_eq!(s.source(), "abc");
    }

    #[test]
    fn edit_inside_utf8_char_rejected() {
        let err = Edit::new(1..2, "x").apply_to("é").unwrap_err();
        assert_eq!(err, EditError::NotCharBoundary { offset: 1 });
    }

    #[test]
    fn adjacent_edits_with_overlapping_damage() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "aa bb cc dd\n").unwrap();
        // First edit damages `bb`; the second, adjacent edit overlaps the
        // freshly spliced region.
        check(&mut s, Edit::new(3..5, "bbbb"));
        assert_eq!(s.source(), "aa bbbb cc dd\n");
        check(&mut s, Edit::new(5..7, "x"));
        assert_eq!(s.source(), "aa bbx cc dd\n");
        // And a third edit straddling both prior damage regions.
        check(&mut s, Edit::new(2..7, " zz "));
        assert_eq!(s.source(), "aa zz cc dd\n");
    }

    #[test]
    fn lex_error_leaves_session_unchanged_and_matches_full_relex() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "ab cd").unwrap();
        let before_tokens = s.tokens().to_vec();
        let edit = Edit::new(3..3, "£");
        let err = s.apply(&edit).unwrap_err();
        let oracle = lexer
            .tokenize(&edit.apply_to("ab cd").unwrap())
            .unwrap_err();
        assert_eq!(err, EditError::Lex(oracle));
        assert_eq!(s.source(), "ab cd");
        assert_eq!(s.tokens(), &before_tokens[..]);
        // The session still works after the rejected edit.
        check(&mut s, Edit::new(3..5, "xy"));
    }

    #[test]
    fn edit_extending_a_comment_swallows_the_suffix() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "x #c\ny z").unwrap();
        // Replacing the newline folds everything into the comment; no
        // resync is possible and the splice re-lexes to EOF.
        let report = check(&mut s, Edit::new(4..5, " "));
        assert_eq!(report.resync_offset, None);
        assert_eq!(s.tokens().len(), 1);
    }

    #[test]
    fn splice_across_crlf_boundary_preserves_spans() {
        let lexer = simple_lexer();
        let src = "ab cd\r\nef gh\r\nij kl";
        let mut s = EditSession::new(&lexer, src).unwrap();
        // Edit on line 2; line-3 tokens keep line/col across the splice.
        let report = check(&mut s, Edit::new(8..10, "ghgh"));
        assert!(report.tokens_reused > 0);
        let last = s.tokens().last().unwrap();
        assert_eq!((last.span().line, last.span().col), (3, 4));
        // Edit that deletes half of a CRLF pair, turning it into a lone
        // CR line terminator.
        check(&mut s, Edit::new(6..7, ""));
        // Edit immediately after a CRLF pair (restart boundary lands on
        // the guarded `\r` lookahead case).
        let mut s = EditSession::new(&lexer, "ab\r\ncd ef").unwrap();
        check(&mut s, Edit::new(4..6, "zz"));
    }

    #[test]
    fn edit_at_eof_appends() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "ab cd").unwrap();
        check(&mut s, Edit::new(5..5, " ef"));
        assert_eq!(s.tokens().len(), 3);
        // Appending to a token whose scan was still alive at EOF must
        // rewind into that token (reach sentinel).
        check(&mut s, Edit::new(8..8, "gh"));
        assert_eq!(s.tokens().last().unwrap().lexeme(), "efgh");
    }

    #[test]
    fn whole_source_replacement_degenerates_to_full_relex() {
        let lexer = simple_lexer();
        let mut s = EditSession::new(&lexer, "ab cd").unwrap();
        let report = check(&mut s, Edit::new(0..5, "if (x == 1) # done"));
        assert_eq!(report.restart_offset, 0);
        assert_eq!(report.tokens_reused, 0);
    }
}
