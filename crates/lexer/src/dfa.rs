//! Subset construction and DFA minimization.
//!
//! The combined rule NFA is determinized (subset construction over an
//! alphabet compressed into byte equivalence classes) and then minimized
//! by partition refinement, preserving each state's accept-rule tag. The
//! result is the dense table the lexer's inner loop runs on: one
//! `next[state][class]` lookup per input byte.

use crate::nfa::Nfa;
use std::collections::HashMap;

/// Sentinel for "no transition".
pub(crate) const DEAD: u32 = u32::MAX;

/// A deterministic finite automaton with rule-tagged accepting states and
/// a compressed alphabet.
#[derive(Debug, Clone)]
pub(crate) struct Dfa {
    /// Byte -> equivalence class.
    pub class_of: [u16; 256],
    /// Number of classes.
    pub num_classes: usize,
    /// `next[state * num_classes + class]`, `DEAD` when undefined.
    pub next: Vec<u32>,
    /// Accepting rule per state (lower index = higher priority).
    pub accept: Vec<Option<usize>>,
    /// The start state.
    pub start: u32,
}

impl Dfa {
    /// Determinizes `nfa` and minimizes the result.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let class_of = byte_classes(nfa);
        let num_classes = (class_of.iter().max().copied().unwrap_or(0) + 1) as usize;
        // One representative byte per class.
        let mut rep = vec![0u8; num_classes];
        for b in (0u16..=255).rev() {
            rep[class_of[b as usize] as usize] = b as u8;
        }

        // Subset construction.
        let start_set = nfa.eps_closure(&[nfa.start]);
        let mut ids: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        let mut accept: Vec<Option<usize>> = Vec::new();

        ids.insert(start_set.clone(), 0);
        sets.push(start_set);
        next.extend(std::iter::repeat_n(DEAD, num_classes));
        accept.push(None);

        let mut work = vec![0u32];
        while let Some(sid) = work.pop() {
            let set = sets[sid as usize].clone();
            accept[sid as usize] = nfa.accept_of(&set);
            for (c, &b) in rep.iter().enumerate() {
                let moved = nfa.eps_closure(&nfa.step(&set, b));
                if moved.is_empty() {
                    continue;
                }
                let tid = match ids.get(&moved) {
                    Some(&t) => t,
                    None => {
                        let t = sets.len() as u32;
                        ids.insert(moved.clone(), t);
                        sets.push(moved);
                        next.extend(std::iter::repeat_n(DEAD, num_classes));
                        accept.push(None);
                        work.push(t);
                        t
                    }
                };
                next[sid as usize * num_classes + c] = tid;
            }
        }

        let dfa = Dfa {
            class_of,
            num_classes,
            next,
            accept,
            start: 0,
        };
        minimize(&dfa)
    }

    /// The next state on byte `b`, or `DEAD`.
    #[inline]
    pub fn step(&self, state: u32, b: u8) -> u32 {
        self.next[state as usize * self.num_classes + self.class_of[b as usize] as usize]
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }
}

/// Computes byte equivalence classes: two bytes are equivalent if no NFA
/// edge distinguishes them.
fn byte_classes(nfa: &Nfa) -> [u16; 256] {
    // Signature of a byte: the set of NFA edges it enables. Hash the
    // membership bit vector across all edges.
    let mut signatures: Vec<Vec<bool>> = vec![Vec::new(); 256];
    for s in &nfa.states {
        for (set, _) in &s.edges {
            for (b, sig) in signatures.iter_mut().enumerate() {
                sig.push(set.contains(b as u8));
            }
        }
    }
    let mut class_ids: HashMap<&[bool], u16> = HashMap::new();
    let mut out = [0u16; 256];
    for b in 0..256 {
        let n = class_ids.len() as u16;
        let id = *class_ids.entry(&signatures[b]).or_insert(n);
        out[b] = id;
    }
    out
}

/// Moore-style partition refinement minimization.
fn minimize(dfa: &Dfa) -> Dfa {
    let n = dfa.num_states();
    // Initial partition: by accept tag. Reserve partition 0 for the
    // implicit dead state so "no transition" stays distinguishable.
    let mut part: Vec<u32> = dfa
        .accept
        .iter()
        .map(|a| match a {
            None => 1,
            Some(r) => 2 + *r as u32,
        })
        .collect();

    loop {
        // Signature: (current partition, partitions of all successors).
        let mut sig_ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut new_part = vec![0u32; n];
        for (s, new_p) in new_part.iter_mut().enumerate() {
            let mut sig = Vec::with_capacity(dfa.num_classes + 1);
            sig.push(part[s]);
            for c in 0..dfa.num_classes {
                let t = dfa.next[s * dfa.num_classes + c];
                sig.push(if t == DEAD { 0 } else { part[t as usize] });
            }
            let fresh = sig_ids.len() as u32 + 1;
            *new_p = *sig_ids.entry(sig).or_insert(fresh);
        }
        let stable = {
            // Same number of blocks means no refinement happened (each
            // old block maps to exactly one new block by construction).
            let old_blocks: std::collections::HashSet<u32> = part.iter().copied().collect();
            sig_ids.len() == old_blocks.len()
        };
        part = new_part;
        if stable {
            break;
        }
    }

    // Renumber blocks densely, keeping the start state's block first.
    let mut block_to_state: HashMap<u32, u32> = HashMap::new();
    block_to_state.insert(part[dfa.start as usize], 0);
    for &block in part.iter().take(n) {
        let fresh = block_to_state.len() as u32;
        block_to_state.entry(block).or_insert(fresh);
    }
    let num_blocks = block_to_state.len();
    let mut next = vec![DEAD; num_blocks * dfa.num_classes];
    let mut accept = vec![None; num_blocks];
    for s in 0..n {
        let b = block_to_state[&part[s]] as usize;
        accept[b] = dfa.accept[s];
        for c in 0..dfa.num_classes {
            let t = dfa.next[s * dfa.num_classes + c];
            next[b * dfa.num_classes + c] = if t == DEAD {
                DEAD
            } else {
                block_to_state[&part[t as usize]]
            };
        }
    }
    Dfa {
        class_of: dfa.class_of,
        num_classes: dfa.num_classes,
        next,
        accept,
        start: 0,
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;
    use crate::regex::parse_regex;

    fn dfa_of(patterns: &[&str]) -> Dfa {
        let rules: Vec<_> = patterns.iter().map(|p| parse_regex(p).unwrap()).collect();
        Dfa::from_nfa(&Nfa::compile(&rules))
    }

    fn matches(dfa: &Dfa, input: &[u8]) -> Option<usize> {
        let mut s = dfa.start;
        for &b in input {
            s = dfa.step(s, b);
            if s == DEAD {
                return None;
            }
        }
        dfa.accept[s as usize]
    }

    #[test]
    fn agrees_with_simple_patterns() {
        let dfa = dfa_of(&["(ab|cd)+"]);
        assert_eq!(matches(&dfa, b"abcd"), Some(0));
        assert_eq!(matches(&dfa, b"ab"), Some(0));
        assert_eq!(matches(&dfa, b""), None);
        assert_eq!(matches(&dfa, b"abc"), None);
    }

    #[test]
    fn rule_priority_preserved() {
        let dfa = dfa_of(&["if", "[a-z]+"]);
        assert_eq!(matches(&dfa, b"if"), Some(0));
        assert_eq!(matches(&dfa, b"iffy"), Some(1));
        assert_eq!(matches(&dfa, b"i"), Some(1));
    }

    #[test]
    fn minimization_shrinks_redundant_states() {
        // (a|b)(a|b) has equivalent intermediate branches; the minimal
        // DFA has 3 live states.
        let dfa = dfa_of(&["(a|b)(a|b)"]);
        assert_eq!(dfa.num_states(), 3);
        assert_eq!(matches(&dfa, b"ab"), Some(0));
        assert_eq!(matches(&dfa, b"ba"), Some(0));
        assert_eq!(matches(&dfa, b"a"), None);
    }

    #[test]
    fn byte_classes_compress_alphabet() {
        let dfa = dfa_of(&["[0-9]+"]);
        // Two classes: digits and everything else.
        assert_eq!(dfa.num_classes, 2);
        assert_eq!(dfa.class_of[b'3' as usize], dfa.class_of[b'7' as usize]);
        assert_ne!(dfa.class_of[b'3' as usize], dfa.class_of[b'x' as usize]);
    }

    #[test]
    fn exhaustive_agreement_with_nfa_oracle() {
        // Compare DFA and NFA decisions on every string over {a,b,c} up
        // to length 5 for a mixed rule set.
        let patterns = ["a(b|c)*", "abc", "c+", "(ab)+c?"];
        let rules: Vec<_> = patterns.iter().map(|p| parse_regex(p).unwrap()).collect();
        let nfa = Nfa::compile(&rules);
        let dfa = Dfa::from_nfa(&nfa);
        let alphabet = [b'a', b'b', b'c'];
        let mut inputs: Vec<Vec<u8>> = vec![Vec::new()];
        let mut frontier: Vec<Vec<u8>> = vec![Vec::new()];
        for _ in 0..5 {
            let mut next_frontier = Vec::new();
            for i in &frontier {
                for &b in &alphabet {
                    let mut v = i.clone();
                    v.push(b);
                    next_frontier.push(v);
                }
            }
            inputs.extend(next_frontier.iter().cloned());
            frontier = next_frontier;
        }
        for input in &inputs {
            let mut cur = nfa.eps_closure(&[nfa.start]);
            for &b in input {
                cur = nfa.eps_closure(&nfa.step(&cur, b));
            }
            let expected = nfa.accept_of(&cur);
            assert_eq!(matches(&dfa, input), expected, "input {input:?}");
        }
    }
}
