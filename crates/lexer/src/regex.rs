//! A byte-oriented regular-expression AST and parser.
//!
//! CoStar parses pre-tokenized input; the paper's evaluation (§6.1) used
//! ANTLR lexers to produce that token stream. This crate is our
//! equivalent substrate, and regular expressions are its rule language.
//! The dialect is the classic lexer-generator core: literals, escapes,
//! character classes (with ranges and negation), `.`, alternation,
//! grouping, and the `* + ?` repetitions — deliberately no backreferences
//! or anchors, so every pattern compiles to a finite automaton.

use std::fmt;

/// A set of bytes, the alphabet unit of the automata pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteSet {
    words: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub fn empty() -> Self {
        ByteSet { words: [0; 4] }
    }

    /// The set of all bytes.
    pub fn full() -> Self {
        ByteSet {
            words: [u64::MAX; 4],
        }
    }

    /// A singleton set.
    pub fn single(b: u8) -> Self {
        let mut s = Self::empty();
        s.insert(b);
        s
    }

    /// Inserts a byte.
    pub fn insert(&mut self, b: u8) {
        self.words[(b / 64) as usize] |= 1 << (b % 64);
    }

    /// Inserts the inclusive range `lo..=hi`.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    /// Set complement.
    pub fn complement(&self) -> Self {
        ByteSet {
            words: [
                !self.words[0],
                !self.words[1],
                !self.words[2],
                !self.words[3],
            ],
        }
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        ByteSet {
            words: [
                self.words[0] | other.words[0],
                self.words[1] | other.words[1],
                self.words[2] | other.words[2],
                self.words[3] | other.words[3],
            ],
        }
    }

    /// `true` if no byte is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over member bytes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..=255).map(|b| b as u8).filter(|&b| self.contains(b))
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet{{")?;
        let mut first = true;
        for b in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "}}")
    }
}

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the set.
    Class(ByteSet),
    /// Matches the concatenation of the parts.
    Concat(Vec<Regex>),
    /// Matches any one of the alternatives.
    Alt(Vec<Regex>),
    /// Kleene star: zero or more repetitions.
    Star(Box<Regex>),
    /// One or more repetitions.
    Plus(Box<Regex>),
    /// Zero or one occurrence.
    Opt(Box<Regex>),
}

/// A regex syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for RegexError {}

/// Parses a pattern into a [`Regex`].
///
/// # Errors
///
/// Returns [`RegexError`] on malformed syntax (unbalanced parentheses,
/// dangling operators, bad escapes, unterminated classes).
///
/// # Examples
///
/// ```
/// use costar_lexer::parse_regex;
/// let re = parse_regex("[a-z_][a-z0-9_]*")?;
/// # Ok::<(), costar_lexer::RegexError>(())
/// ```
pub fn parse_regex(pattern: &str) -> Result<Regex, RegexError> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let re = p.parse_alt()?;
    if p.pos != p.bytes.len() {
        return Err(p.error("unexpected trailing characters"));
    }
    Ok(re)
}

/// Escapes a literal string so it matches itself as a regex — used to
/// turn punctuation/keyword spellings into lexer rules.
///
/// # Examples
///
/// ```
/// use costar_lexer::escape_literal;
/// assert_eq!(escape_literal("+="), "\\+=");
/// ```
pub fn escape_literal(literal: &str) -> String {
    let mut out = String::with_capacity(literal.len() * 2);
    for c in literal.chars() {
        if "\\()[]{}|*+?.^$/-".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> RegexError {
        RegexError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn parse_alt(&mut self) -> Result<Regex, RegexError> {
        let mut alts = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            alts.push(self.parse_concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().unwrap_or(Regex::Empty)
        } else {
            Regex::Alt(alts)
        })
    }

    fn parse_concat(&mut self) -> Result<Regex, RegexError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Regex::Empty,
            1 => parts.pop().unwrap_or(Regex::Empty),
            _ => Regex::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Regex, RegexError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Regex::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Regex::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Regex::Opt(Box::new(atom));
                }
                _ => return Ok(atom),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Regex, RegexError> {
        match self.bump() {
            None => Err(self.error("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(inner)
            }
            Some(b'[') => self.parse_class(),
            Some(b'.') => {
                // Any byte except newline, the usual lexer convention.
                Ok(Regex::Class(ByteSet::single(b'\n').complement()))
            }
            Some(b'\\') => {
                let b = self.bump().ok_or_else(|| self.error("dangling escape"))?;
                Ok(Regex::Class(ByteSet::single(
                    unescape(b).ok_or_else(|| self.error("unknown escape"))?,
                )))
            }
            Some(b @ (b'*' | b'+' | b'?' | b')')) => Err(RegexError {
                at: self.pos - 1,
                message: format!("unexpected '{}'", b as char),
            }),
            Some(b) => Ok(Regex::Class(ByteSet::single(b))),
        }
    }

    fn parse_class(&mut self) -> Result<Regex, RegexError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = ByteSet::empty();
        let mut first = true;
        loop {
            let b = match self.bump() {
                None => return Err(self.error("unterminated character class")),
                Some(b']') if !first => break,
                Some(b'\\') => {
                    let e = self
                        .bump()
                        .ok_or_else(|| self.error("dangling escape in class"))?;
                    unescape(e).ok_or_else(|| self.error("unknown escape in class"))?
                }
                Some(b) => b,
            };
            first = false;
            // Range?
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                self.bump(); // the '-'
                let hi = match self.bump() {
                    None => return Err(self.error("unterminated range")),
                    Some(b'\\') => {
                        let e = self
                            .bump()
                            .ok_or_else(|| self.error("dangling escape in range"))?;
                        unescape(e).ok_or_else(|| self.error("unknown escape in range"))?
                    }
                    Some(hi) => hi,
                };
                if hi < b {
                    return Err(self.error("inverted range"));
                }
                set.insert_range(b, hi);
            } else {
                set.insert(b);
            }
        }
        Ok(Regex::Class(if negated { set.complement() } else { set }))
    }
}

/// Resolves an escape character to the byte it denotes.
fn unescape(b: u8) -> Option<u8> {
    Some(match b {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        // Identity escapes for metacharacters and common punctuation.
        b'\\' | b'\'' | b'"' | b'-' | b']' | b'[' | b'(' | b')' | b'*' | b'+' | b'?' | b'.'
        | b'|' | b'/' | b'^' | b'$' | b'{' | b'}' => b,
        _ => return None,
    })
}

#[cfg(test)]
#[allow(clippy::disallowed_methods, clippy::disallowed_macros)]
mod tests {
    use super::*;

    #[test]
    fn byteset_basics() {
        let mut s = ByteSet::empty();
        assert!(s.is_empty());
        s.insert(b'a');
        s.insert_range(b'0', b'9');
        assert!(s.contains(b'a'));
        assert!(s.contains(b'5'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.iter().count(), 11);
        let c = s.complement();
        assert!(!c.contains(b'a'));
        assert!(c.contains(b'b'));
        assert_eq!(ByteSet::full().iter().count(), 256);
    }

    #[test]
    fn parses_literals_and_concat() {
        let re = parse_regex("abc").unwrap();
        let Regex::Concat(parts) = re else {
            panic!("expected concat")
        };
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], Regex::Class(ByteSet::single(b'a')));
    }

    #[test]
    fn parses_alternation_precedence() {
        // a|bc parses as a | (bc), not (a|b)c.
        let re = parse_regex("a|bc").unwrap();
        let Regex::Alt(alts) = re else {
            panic!("expected alt")
        };
        assert_eq!(alts.len(), 2);
        assert!(matches!(alts[1], Regex::Concat(_)));
    }

    #[test]
    fn parses_repetitions() {
        assert!(matches!(parse_regex("a*").unwrap(), Regex::Star(_)));
        assert!(matches!(parse_regex("a+").unwrap(), Regex::Plus(_)));
        assert!(matches!(parse_regex("a?").unwrap(), Regex::Opt(_)));
        // Stacked repetition applies to the previous result.
        assert!(matches!(parse_regex("a+?").unwrap(), Regex::Opt(_)));
    }

    #[test]
    fn parses_groups() {
        let re = parse_regex("(ab)*").unwrap();
        let Regex::Star(inner) = re else {
            panic!("expected star")
        };
        assert!(matches!(*inner, Regex::Concat(_)));
    }

    #[test]
    fn parses_classes_ranges_negation() {
        let Regex::Class(s) = parse_regex("[a-cx]").unwrap() else {
            panic!("expected class")
        };
        for b in [b'a', b'b', b'c', b'x'] {
            assert!(s.contains(b));
        }
        assert!(!s.contains(b'd'));

        let Regex::Class(n) = parse_regex("[^\"]").unwrap() else {
            panic!("expected class")
        };
        assert!(!n.contains(b'"'));
        assert!(n.contains(b'a'));

        // ']' as first member, '-' as last member.
        let Regex::Class(s) = parse_regex("[]-]").unwrap() else {
            panic!("expected class")
        };
        assert!(s.contains(b']'));
        assert!(s.contains(b'-'));
    }

    #[test]
    fn dot_excludes_newline() {
        let Regex::Class(s) = parse_regex(".").unwrap() else {
            panic!("expected class")
        };
        assert!(s.contains(b'a'));
        assert!(s.contains(b' '));
        assert!(!s.contains(b'\n'));
    }

    #[test]
    fn escapes() {
        let Regex::Class(s) = parse_regex("\\n").unwrap() else {
            panic!()
        };
        assert!(s.contains(b'\n'));
        let Regex::Class(s) = parse_regex("\\*").unwrap() else {
            panic!()
        };
        assert!(s.contains(b'*'));
        assert!(parse_regex("\\q").is_err());
    }

    #[test]
    fn error_positions() {
        assert!(parse_regex("(a").is_err());
        assert!(parse_regex("a)").is_err());
        assert!(parse_regex("*a").is_err());
        assert!(parse_regex("[a").is_err());
        assert!(parse_regex("[z-a]").is_err());
        let e = parse_regex("[z-a]").unwrap_err();
        assert!(e.to_string().contains("inverted"));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert_eq!(parse_regex("").unwrap(), Regex::Empty);
        let Regex::Alt(alts) = parse_regex("a|").unwrap() else {
            panic!()
        };
        assert_eq!(alts[1], Regex::Empty);
    }

    #[test]
    fn escape_literal_round_trips() {
        for lit in ["+", "(", "[", "a+b", "**", "/", "{"] {
            let re = parse_regex(&escape_literal(lit)).unwrap();
            // The escaped pattern parses, and matches exactly the literal
            // (verified end-to-end in the dfa tests).
            let _ = re;
        }
    }
}
