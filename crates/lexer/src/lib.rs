//! # costar-lexer — tokenization substrate for the CoStar reproduction
//!
//! CoStar parses *pre-tokenized* input; in the paper's evaluation (§6.1)
//! ANTLR lexers produced the token streams. This crate is the equivalent
//! substrate built from scratch: a classic lexer-generator pipeline
//!
//! ```text
//! rule patterns ──parse──▶ Regex AST ──Thompson──▶ NFA
//!        ──subset construction──▶ DFA ──minimize──▶ scanner table
//! ```
//!
//! with maximal-munch scanning (longest match wins, rule order breaks
//! ties) and skip rules for whitespace and comments. Emitted terminals are
//! interned in the same [`costar_grammar::SymbolTable`] the grammar uses,
//! so lexer output plugs directly into the parser.
//!
//! # Example
//!
//! ```
//! use costar_lexer::{Lexer, LexerSpec};
//! use costar_grammar::SymbolTable;
//!
//! let mut spec = LexerSpec::new();
//! spec.token("Int", "[0-9]+")
//!     .token_literal("Plus", "+")
//!     .skip("ws", " +");
//! let mut symbols = SymbolTable::new();
//! let lexer = Lexer::compile(&spec, &mut symbols)?;
//! let tokens = lexer.tokenize("1 + 23")?;
//! assert_eq!(tokens.len(), 3);
//! assert_eq!(tokens[2].lexeme(), "23");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Panic-freedom discipline (clippy.toml `disallowed_*` config): the
// whole crate is production tooling fed arbitrary user input, so every
// module opts in; test modules carry a targeted `#[allow]`.
#![warn(clippy::disallowed_methods, clippy::disallowed_macros)]

mod dfa;
mod incremental;
mod lexer;
mod nfa;
mod regex;

pub use incremental::{Edit, EditError, EditSession, SpliceReport};
pub use lexer::{LexAction, LexError, LexRule, Lexer, LexerBuildError, LexerSpec};
pub use regex::{escape_literal, parse_regex, ByteSet, Regex, RegexError};
