//! Property tests for the lexer pipeline: the regex parser, the
//! NFA→DFA construction, and the maximal-munch scanner.

// Tests are exempt from the crate's panic-freedom discipline
// (crates/lexer/clippy.toml), same as the in-crate test modules.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar_grammar::SymbolTable;
use costar_lexer::{parse_regex, Lexer, LexerSpec, Regex};
use proptest::prelude::*;

/// A strategy for random regex ASTs over a small alphabet, rendered back
/// to pattern syntax.
fn regex_ast() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        proptest::sample::select(vec!['a', 'b', 'c'])
            .prop_map(|c| { parse_regex(&c.to_string()).expect("single char parses") }),
        Just(parse_regex("[ab]").expect("class parses")),
        Just(parse_regex("[^c]").expect("negated class parses")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::Concat),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.clone().prop_map(|r| Regex::Plus(Box::new(r))),
            inner.prop_map(|r| Regex::Opt(Box::new(r))),
        ]
    })
}

/// Renders an AST back into pattern syntax (with full parenthesization,
/// so precedence cannot be mangled).
fn render(re: &Regex) -> String {
    match re {
        Regex::Empty => String::new(),
        Regex::Class(set) => {
            // Render as an explicit class over the printable bytes we use.
            let mut s = String::from("[");
            let mut empty = true;
            for b in [b'a', b'b', b'c', b'd'] {
                if set.contains(b) {
                    s.push(b as char);
                    empty = false;
                }
            }
            // Classes from this strategy always contain one of a..d on
            // the test alphabet; fall back to a never-matching class.
            if empty {
                return "[d]".to_owned();
            }
            s.push(']');
            s
        }
        Regex::Concat(parts) => parts.iter().map(|p| format!("({})", render(p))).collect(),
        Regex::Alt(alts) => alts
            .iter()
            .map(|a| format!("({})", render(a)))
            .collect::<Vec<_>>()
            .join("|"),
        Regex::Star(r) => format!("({})*", render(r)),
        Regex::Plus(r) => format!("({})+", render(r)),
        Regex::Opt(r) => format!("({})?", render(r)),
    }
}

/// A direct backtracking matcher over the AST: the specification the
/// compiled DFA must agree with.
fn spec_match(re: &Regex, input: &[u8]) -> bool {
    fn m(re: &Regex, input: &[u8], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        match re {
            Regex::Empty => k(pos),
            Regex::Class(set) => match input.get(pos) {
                Some(&b) if set.contains(b) => k(pos + 1),
                _ => false,
            },
            Regex::Concat(parts) => {
                fn seq(
                    parts: &[Regex],
                    input: &[u8],
                    pos: usize,
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    match parts.split_first() {
                        None => k(pos),
                        Some((first, rest)) => {
                            let mut mids = Vec::new();
                            m(first, input, pos, &mut |p| {
                                mids.push(p);
                                false
                            });
                            mids.into_iter().any(|p| seq(rest, input, p, k))
                        }
                    }
                }
                seq(parts, input, pos, k)
            }
            Regex::Alt(alts) => alts.iter().any(|a| m(a, input, pos, k)),
            Regex::Star(inner) => {
                fn star(
                    inner: &Regex,
                    input: &[u8],
                    pos: usize,
                    k: &mut dyn FnMut(usize) -> bool,
                ) -> bool {
                    if k(pos) {
                        return true;
                    }
                    let mut mids = Vec::new();
                    m(inner, input, pos, &mut |p| {
                        mids.push(p);
                        false
                    });
                    mids.into_iter()
                        .any(|p| p > pos && star(inner, input, p, k))
                }
                star(inner, input, pos, k)
            }
            Regex::Plus(inner) => m(
                &Regex::Concat(vec![(**inner).clone(), Regex::Star(inner.clone())]),
                input,
                pos,
                k,
            ),
            Regex::Opt(inner) => {
                if k(pos) {
                    return true;
                }
                m(inner, input, pos, k)
            }
        }
    }
    let mut accepted = false;
    m(re, input, 0, &mut |p| {
        if p == input.len() {
            accepted = true;
        }
        accepted
    });
    accepted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round trip: rendering an AST and re-parsing it yields the same
    /// matching behavior (checked on all short words, via the spec
    /// matcher).
    #[test]
    fn render_parse_round_trip(re in regex_ast(), input in "[abc]{0,6}") {
        let rendered = render(&re);
        let reparsed = parse_regex(&rendered)
            .unwrap_or_else(|e| panic!("rendered pattern {rendered:?} fails to parse: {e}"));
        prop_assert_eq!(
            spec_match(&re, input.as_bytes()),
            spec_match(&reparsed, input.as_bytes()),
            "pattern {:?} on {:?}",
            rendered,
            input
        );
    }

    /// The compiled pipeline (regex → NFA → minimized DFA, via a
    /// one-rule lexer) agrees with the backtracking specification on
    /// full-string matches.
    #[test]
    fn dfa_agrees_with_spec(re in regex_ast(), input in "[abc]{0,7}") {
        let rendered = render(&re);
        // Empty-matching rules are rejected by the lexer by design; test
        // via a guaranteed-nonempty wrapper instead: X = (re)x marker.
        let pattern = format!("({rendered})x");
        let mut spec = LexerSpec::new();
        spec.token("X", &pattern);
        let mut tab = SymbolTable::new();
        let lexer = Lexer::compile(&spec, &mut tab).expect("compiles");
        let marked = format!("{input}x");
        let lexed_ok = matches!(lexer.tokenize(&marked), Ok(toks) if toks.len() == 1);
        // The lexer uses maximal munch over ONE token covering the whole
        // input; equivalent to a full match of (re)x.
        let wrapped = Regex::Concat(vec![
            re,
            parse_regex("x").expect("x parses"),
        ]);
        prop_assert_eq!(
            lexed_ok,
            spec_match(&wrapped, marked.as_bytes()),
            "pattern {:?} on {:?}",
            pattern,
            marked
        );
    }

    /// Tokenization is a partition: concatenating lexemes of the emitted
    /// tokens plus skipped regions reconstructs the input, offsets are
    /// strictly increasing, and every lexeme is nonempty.
    #[test]
    fn tokenization_partitions_input(input in "[a-z0-9 .,()+=]{0,40}") {
        let mut spec = LexerSpec::new();
        spec.token("Word", "[a-z]+")
            .token("Num", "[0-9]+")
            .token_literal("LP", "(")
            .token_literal("RP", ")")
            .token_literal("Plus", "+")
            .token_literal("Eq", "=")
            .token_literal("Dot", ".")
            .token_literal("Comma", ",")
            .skip("ws", " +");
        let mut tab = SymbolTable::new();
        let lexer = Lexer::compile(&spec, &mut tab).expect("compiles");
        let toks = lexer.tokenize(&input).expect("alphabet fully covered");
        let mut last_end = 0usize;
        for t in &toks {
            prop_assert!(!t.lexeme().is_empty());
            prop_assert!(t.offset() >= last_end);
            // The lexeme actually appears at its offset.
            prop_assert_eq!(&input[t.offset()..t.offset() + t.lexeme().len()], t.lexeme());
            // Anything skipped between tokens is whitespace.
            prop_assert!(input[last_end..t.offset()].chars().all(|c| c == ' '));
            last_end = t.offset() + t.lexeme().len();
        }
        prop_assert!(input[last_end..].chars().all(|c| c == ' '));
    }
}
