//! Allocation accounting for fixed-lexeme token interning.
//!
//! `LexerSpec::token_literal` rules (keywords, punctuation) match exactly
//! one spelling, so the compiled lexer interns that spelling once and
//! tokenization hands out `Arc` clones. These tests pin the property with
//! a counting global allocator: lexing N fixed-lexeme tokens performs
//! only the token vector's growth allocations, never one per occurrence.

// Tests are exempt from the crate's panic-freedom discipline
// (crates/lexer/clippy.toml), same as the in-crate test modules.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar_grammar::SymbolTable;
use costar_lexer::{Lexer, LexerSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let r = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (r, after - before)
}

fn punct_lexer() -> Lexer {
    let mut spec = LexerSpec::new();
    spec.token_literal("If", "if");
    spec.token_literal("LBrace", "{");
    spec.token_literal("RBrace", "}");
    spec.token_literal("Comma", ",");
    spec.token("Ident", "[a-z]+");
    spec.skip("ws", " +");
    let mut tab = SymbolTable::new();
    Lexer::compile(&spec, &mut tab).unwrap()
}

#[test]
fn lexing_fixed_lexemes_does_not_allocate_per_token() {
    let lexer = punct_lexer();
    // 4096 tokens, all fixed-spelling: `if { } ,` repeated.
    let source = "if { } , ".repeat(1024);
    let (tokens, allocs) = allocations_during(|| lexer.tokenize(&source).unwrap());
    assert_eq!(tokens.len(), 4096);
    // Only the token vector's doubling growth may allocate: ~log2(4096)
    // reallocations plus small constant slack, nowhere near one per token.
    assert!(
        allocs <= 32,
        "interned lexing allocated {allocs} times for {} tokens",
        tokens.len()
    );
    // Every `if` shares one interned allocation.
    let first_if = tokens.iter().find(|t| t.lexeme() == "if").unwrap();
    assert!(tokens
        .iter()
        .filter(|t| t.lexeme() == "if")
        .all(|t| std::ptr::eq(t.lexeme().as_ptr(), first_if.lexeme().as_ptr())));
}

#[test]
fn pattern_tokens_still_allocate_their_lexemes() {
    let lexer = punct_lexer();
    let source = "ab cd ef";
    let (tokens, allocs) = allocations_during(|| lexer.tokenize(source).unwrap());
    assert_eq!(tokens.len(), 3);
    // Three fresh lexemes plus vector growth: must be at least one
    // allocation per pattern-matched token (the interning fast path does
    // not apply to them).
    assert!(allocs >= 3, "expected per-lexeme allocations, got {allocs}");
}
