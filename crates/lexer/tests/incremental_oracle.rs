//! Randomized splice-vs-full-relex oracle for `EditSession`, at the lexer
//! crate level (the cross-crate `H-INCR-LEX-SOUND` harness in
//! `costar-verify` is the CI gate; this is the fast local loop).
//!
//! For random sources and random edit scripts over a hazard-rich mini
//! language (maximal-munch `=`/`==`, keyword/identifier overlap, comments
//! whose scan reach runs to end of line, CRLF and lone-CR terminators),
//! the spliced token vector must be byte-identical — kind, lexeme, span —
//! to a from-scratch lex of the edited source, and lex failures must
//! agree on the error position.

// Tests are exempt from the crate's panic-freedom discipline
// (crates/lexer/clippy.toml), same as the in-crate test modules.
#![allow(clippy::disallowed_methods, clippy::disallowed_macros)]

use costar_grammar::SymbolTable;
use costar_lexer::{Edit, EditSession, Lexer, LexerSpec};
use proptest::prelude::*;

fn hazard_lexer() -> Lexer {
    let mut spec = LexerSpec::new();
    spec.token_literal("If", "if");
    spec.token_literal("EqEq", "==");
    spec.token_literal("Eq", "=");
    spec.token_literal("LParen", "(");
    spec.token_literal("RParen", ")");
    spec.token("Ident", "[a-z][a-z0-9_]*");
    spec.token("Int", "[0-9]+");
    spec.skip("ws", "[ \\t\\r\\n]+");
    spec.skip("comment", "#[^\\n]*");
    let mut tab = SymbolTable::new();
    Lexer::compile(&spec, &mut tab).unwrap()
}

/// Fragments biased toward boundary hazards; all ASCII, so every byte
/// offset is a char boundary and edits never split a character.
const FRAGMENTS: &[&str] = &[
    "a", "b", "if", "iff", "x1", "=", "==", "(", ")", "0", "12", " ", "\t", "\n", "\r\n", "\r",
    "# c", "#", "",
];

fn source_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..FRAGMENTS.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| FRAGMENTS[i]).collect())
}

/// An edit script: (start-fraction, len-fraction, replacement) triples,
/// scaled to whatever the source length is when the edit applies.
fn edits_strategy() -> impl Strategy<Value = Vec<(usize, usize, String)>> {
    proptest::collection::vec(
        (
            0..=100usize,
            0..=100usize,
            proptest::collection::vec(0..FRAGMENTS.len(), 0..3)
                .prop_map(|ix| ix.into_iter().map(|i| FRAGMENTS[i]).collect::<String>()),
        ),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn splice_is_byte_identical_to_full_relex(
        src in source_strategy(),
        script in edits_strategy(),
    ) {
        let lexer = hazard_lexer();
        let Ok(mut session) = EditSession::new(&lexer, &src) else {
            // Source doesn't lex (e.g. a bare `"`#-free hazard); nothing
            // to check incrementally.
            return Ok(());
        };
        for (sf, lf, replacement) in script {
            let len = session.source().len();
            let start = sf * len / 100;
            let end = (start + lf * (len - start).max(1) / 100).min(len);
            let edit = Edit::new(start..end, replacement);
            let edited = edit.apply_to(session.source()).unwrap();
            let before = session.tokens().to_vec();
            match (session.apply(&edit), lexer.tokenize(&edited)) {
                (Ok(report), Ok(oracle)) => {
                    prop_assert_eq!(session.source(), edited.as_str());
                    prop_assert_eq!(session.tokens(), &oracle[..]);
                    // `unchanged` must mean exactly "token vector is
                    // byte-identical to before the edit".
                    prop_assert_eq!(report.unchanged, before == oracle);
                }
                (Err(costar_lexer::EditError::Lex(e)), Err(oracle_err)) => {
                    // Failed edits agree with the from-scratch error and
                    // leave the session on its previous (lexable) source.
                    prop_assert_eq!(e, oracle_err);
                    prop_assert_ne!(session.source(), edited.as_str());
                    let tokens = lexer.tokenize(session.source()).unwrap();
                    prop_assert_eq!(session.tokens(), &tokens[..]);
                }
                (inc, full) => {
                    return Err(TestCaseError::fail(format!(
                        "incremental {inc:?} vs full {}",
                        if full.is_ok() { "Ok" } else { "Err" }
                    )));
                }
            }
        }
    }
}
