//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the API subset its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], per-group
//! `sample_size` / `throughput` / `bench_function` / `finish`, and
//! [`Bencher::iter`]. Measurements are simple wall-clock medians — good
//! enough for the relative comparisons the benches make, with none of
//! upstream criterion's statistics, plotting, or baselines.

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Upstream-compat no-op: configuration is fixed in this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs final reporting (no-op).
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        // One warm-up sample, then the timed ones.
        f(&mut bencher);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!(
            "{}/{id}: median {median:?} over {} samples{rate}",
            self.name, self.sample_size
        );
        self
    }

    /// Runs one benchmark with an input value (upstream compat).
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, accumulating wall-clock elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std_black_box(routine());
        self.elapsed += start.elapsed();
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 3, "warm-up + samples must run the routine");
    }
}
