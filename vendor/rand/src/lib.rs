//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the small slice of the rand 0.9 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`],
//! [`Rng::random_bool`], and [`rngs::SmallRng`]. The generator is
//! xoshiro256** seeded through SplitMix64 — the same construction the real
//! `SmallRng` uses on 64-bit targets — so corpora generated with a given
//! seed are high-quality and deterministic, though not bit-identical to
//! upstream `rand`'s streams.

#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};

/// A source of randomness: the subset of `rand::RngCore` + `rand::Rng`
/// this workspace needs, merged into one trait for simplicity.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, mirroring upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: RangeBounds<T>,
    {
        T::sample(self, &range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p must be in [0,1]");
        // 53 random bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples a value of `Self` uniformly from `range`.
    fn sample<G: Rng + ?Sized, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self;
}

/// Uniform u64 in `[0, n)` without modulo bias (Lemire's method would be
/// faster; widening-multiply rejection is simpler and unbiased).
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: Rng + ?Sized, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                let lo: u64 = match range.start_bound() {
                    Bound::Included(&x) => x as u64,
                    Bound::Excluded(&x) => (x as u64) + 1,
                    Bound::Unbounded => 0,
                };
                let hi_incl: u64 = match range.end_bound() {
                    Bound::Included(&x) => x as u64,
                    Bound::Excluded(&x) => (x as u64).checked_sub(1)
                        .expect("cannot sample from an empty range"),
                    Bound::Unbounded => <$t>::MAX as u64,
                };
                assert!(lo <= hi_incl, "cannot sample from an empty range");
                let span = hi_incl - lo;
                let v = if span == u64::MAX { rng.next_u64() } else { uniform_below(rng, span + 1) };
                (lo + v) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: Rng + ?Sized, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                // Shift to unsigned space to sample, then shift back.
                let off = <$t>::MIN as $u;
                let lo: $u = match range.start_bound() {
                    Bound::Included(&x) => (x as $u).wrapping_sub(off),
                    Bound::Excluded(&x) => (x as $u).wrapping_sub(off) + 1,
                    Bound::Unbounded => 0,
                };
                let hi_incl: $u = match range.end_bound() {
                    Bound::Included(&x) => (x as $u).wrapping_sub(off),
                    Bound::Excluded(&x) => (x as $u).wrapping_sub(off).checked_sub(1)
                        .expect("cannot sample from an empty range"),
                    Bound::Unbounded => <$u>::MAX,
                };
                assert!(lo <= hi_incl, "cannot sample from an empty range");
                let span = (hi_incl - lo) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { uniform_below(rng, span + 1) };
                ((lo as u64 + v) as $u).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v: usize = rng.random_range(1..=4);
            assert!((1..=4).contains(&v));
            lo_seen |= v == 1;
            hi_seen |= v == 4;
        }
        assert!(lo_seen && hi_seen);
        for _ in 0..2000 {
            let v: i32 = rng.random_range(-1000..1000);
            assert!((-1000..1000).contains(&v));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
