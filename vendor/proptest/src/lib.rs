//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the slice of the proptest 1.x API its test suites
//! use: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`], the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! `prop_recursive` and `boxed`, integer-range / tuple / [`Just`] /
//! `any::<T>()` strategies, [`collection::vec`], [`sample::select`], and
//! character-class string patterns of the form `"[abc]{0,6}"`.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: each test case's RNG is seeded from the test name
//!   and case index, so runs are reproducible without regression files
//!   (`.proptest-regressions` files are ignored).
//! * **No shrinking**: a failing case reports the generated input and
//!   panics immediately. The inputs in this workspace are small enough to
//!   read unshrunk.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt;
    use std::sync::Arc;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value: fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into a deeper one. The
        /// `_desired_size` and `_expected_branch_size` knobs of upstream
        /// proptest are accepted and ignored; recursion is unrolled
        /// `depth` times with leaves at the bottom.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat.clone()).boxed();
            }
            strat
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies of the same value type (the
    /// backing for [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: fmt::Debug> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { options, total }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed correctly")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// String strategy from a `[class]{min,max}` pattern (the subset of
    /// proptest's regex string strategies this workspace uses). The class
    /// supports literal characters, `a-z` ranges, and `\n \t \r \\ \] \[
    /// \- \/` escapes.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        fn bad_pattern(pattern: &str) -> ! {
            panic!(
                "unsupported string pattern {pattern:?}: this offline proptest \
                 stand-in only handles \"[class]{{min,max}}\""
            )
        }

        let mut it = pattern.chars().peekable();
        if it.next() != Some('[') {
            bad_pattern(pattern);
        }
        let mut chars: Vec<char> = Vec::new();
        loop {
            let c = it.next().unwrap_or_else(|| bad_pattern(pattern));
            match c {
                ']' => break,
                '\\' => {
                    let e = it.next().unwrap_or_else(|| bad_pattern(pattern));
                    chars.push(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                }
                _ => {
                    if it.peek() == Some(&'-') {
                        // Possible range; '-' just before ']' is literal.
                        let mut ahead = it.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&']') | None => chars.push(c),
                            Some(&hi) => {
                                it.next();
                                it.next();
                                if hi < c {
                                    bad_pattern(pattern);
                                }
                                chars.extend((c..=hi).filter(|ch| ch.is_ascii() || *ch <= hi));
                            }
                        }
                    } else {
                        chars.push(c);
                    }
                }
            }
        }
        if chars.is_empty() {
            bad_pattern(pattern);
        }
        if it.next() != Some('{') {
            bad_pattern(pattern);
        }
        let rest: String = it.collect();
        let body = rest
            .strip_suffix('}')
            .unwrap_or_else(|| bad_pattern(pattern));
        let (min, max) = match body.split_once(',') {
            Some((a, b)) => (
                a.parse().unwrap_or_else(|_| bad_pattern(pattern)),
                b.parse().unwrap_or_else(|_| bad_pattern(pattern)),
            ),
            None => {
                let n = body.parse().unwrap_or_else(|_| bad_pattern(pattern));
                (n, n)
            }
        };
        if max < min {
            bad_pattern(pattern);
        }
        (chars, min, max)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> { Any(std::marker::PhantomData) }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(std::marker::PhantomData)
        }
    }

    /// The canonical strategy for `T` (upstream `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_incl - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Test execution: configuration, RNG, and the case runner the
/// [`proptest!`] macro expands to.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::fmt;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A property-level failure (what [`prop_assert!`](crate::prop_assert)
    /// produces).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given reason.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG for one (test, case) pair: runs are reproducible
        /// without regression files.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n` is zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            if n.is_power_of_two() {
                return self.next_u64() & (n - 1);
            }
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }
    }

    /// Runs one property over `config.cases` generated inputs. Failures
    /// (returned errors or panics in the body) report the generated input
    /// and abort the test immediately — no shrinking.
    pub fn run_test<S, F>(name: &str, config: &ProptestConfig, strategy: &S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(name, case);
            let value = strategy.generate(&mut rng);
            let desc = format!("{value:#?}");
            match catch_unwind(AssertUnwindSafe(|| body(value))) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "property {name} failed at case {case}/{}: {e}\ninput: {desc}",
                    config.cases
                ),
                Err(payload) => {
                    eprintln!(
                        "property {name} panicked at case {case}/{}\ninput: {desc}",
                        config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one arm per test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_test(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_class_and_lengths() {
        use crate::strategy::Strategy as _;
        let mut rng = TestRng::for_case("string_pattern", 0);
        for _ in 0..200 {
            let s = "[a-c x]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc x".contains(c)), "{s:?}");
        }
        let escaped = "[\\n\\t\\-\\]]{1,1}".generate(&mut rng);
        assert!("\n\t-]".contains(escaped.chars().next().unwrap()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuple + range + vec + oneof + map compose.
        #[test]
        fn composed_strategies_generate_in_bounds(
            n in 1usize..5,
            xs in crate::collection::vec(0u64..10, 0..6),
            pick in prop_oneof![2 => (0usize..3).prop_map(|v| v * 2), 1 => Just(99usize)],
            seed in any::<u64>(),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(pick == 99 || pick % 2 == 0);
            let _ = seed;
        }
    }

    #[test]
    #[should_panic(expected = "property sometimes_fails")]
    fn failures_report_input() {
        crate::__proptest_items! {
            (ProptestConfig::with_cases(64));
            fn sometimes_fails(x in 0usize..8) {
                prop_assert!(x != 5, "x hit the forbidden value");
            }
        }
        sometimes_fails();
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy as _;
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let strat = Just(T::Leaf).boxed().prop_recursive(4, 16, 2, |inner| {
            inner.prop_map(|t| T::Node(Box::new(t))).boxed()
        });
        let mut rng = TestRng::for_case("recursive", 1);
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }
}
