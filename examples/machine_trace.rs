//! Stepping the stack machine by hand: the paper's Fig. 2 trace.
//!
//! Drives `step` one operation at a time on the grammar and input of
//! Fig. 2, printing after each step the machine's suffix stack, the
//! remaining tokens, the visited set, and the §4 termination measure —
//! watch the measure strictly decrease in the lexicographic order at
//! every step, which is exactly Lemma 4.2.
//!
//! Run with: `cargo run --example machine_trace`

use costar::measure::meas;
use costar::{Machine, SllCache, StepResult};
use costar_grammar::analysis::GrammarAnalysis;
use costar_grammar::{GrammarBuilder, Token};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["A", "c"]);
    gb.rule("S", &["A", "d"]);
    gb.rule("A", &["a", "A"]);
    gb.rule("A", &["b"]);
    let grammar = gb.start("S").build()?;
    let analysis = GrammarAnalysis::compute(&grammar);

    let symbols = grammar.symbols().clone();
    let tok = |n: &str| Token::new(symbols.lookup_terminal(n).unwrap(), n);
    let word = vec![tok("a"), tok("b"), tok("d")];

    let mut machine = Machine::new(&grammar, &analysis, &word);
    let mut cache = SllCache::new();

    println!("parsing \"abd\" with the Fig. 2 grammar\n");
    println!(
        "{:<4} {:<28} {:<10} {:<12} measure",
        "σ", "suffix stack", "tokens", "visited"
    );
    print_state(&machine, &grammar, &word, 0);

    let mut step = 0usize;
    let tree = loop {
        match machine.step(&mut cache) {
            StepResult::Cont => {
                step += 1;
                print_state(&machine, &grammar, &word, step);
            }
            StepResult::Accept(tree) => break tree,
            other => panic!("unexpected result: {other:?}"),
        }
    };

    println!("\nfinal parse tree:");
    print!("{}", tree.render(grammar.symbols()));
    Ok(())
}

fn print_state(
    machine: &Machine<'_>,
    grammar: &costar_grammar::Grammar,
    word: &[Token],
    step: usize,
) {
    let st = machine.state();
    let symbols = grammar.symbols();

    // Render the suffix stack top-first, each frame as its unprocessed
    // symbols (the paper's presentation).
    let frames: Vec<String> = st
        .suffix
        .iter()
        .rev()
        .map(|f| {
            let syms: Vec<&str> = f
                .unprocessed()
                .iter()
                .map(|&s| symbols.symbol_name(s))
                .collect();
            format!("[{}]", syms.join(" "))
        })
        .collect();
    let rest: String = word[st.cursor..]
        .iter()
        .map(|t| t.lexeme())
        .collect::<Vec<_>>()
        .join("");
    let visited: Vec<&str> = st
        .visited
        .iter()
        .map(|x| symbols.nonterminal_name(x))
        .collect();
    let m = meas(grammar, st, word.len());
    println!(
        "σ{:<3} {:<28} {:<10} {:<12} {}",
        step,
        frames.join(""),
        if rest.is_empty() { "ε" } else { &rest },
        format!("{{{}}}", visited.join(",")),
        m
    );
}
