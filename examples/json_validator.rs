//! A JSON validator: the paper's JSON benchmark as a command-line tool.
//!
//! Reads JSON from the file named on the command line (or validates a
//! built-in sample), lexes it with the DFA lexer, parses it with CoStar,
//! and reports acceptance or a positioned syntax error. Because the
//! parser is a decision procedure for language membership (paper §1),
//! "accepted" and "rejected" are the only possible verdicts — there is no
//! crash-or-hang third case.
//!
//! Run with: `cargo run --example json_validator [file.json]`

use costar::{ParseOutcome, Parser, RejectReason};
use costar_langs::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => r#"{
  "name": "costar",
  "kind": "ALL(*) parser",
  "verified_properties": ["soundness", "completeness", "termination"],
  "grammar": {"terminals": 11, "productions": 17},
  "linear_time": true,
  "slowdown_vs_antlr": [5.4, 11.0, 6.9, 49.4]
}"#
        .to_owned(),
    };

    let lang = json::language();
    let tokens = match lang.tokenize(&source) {
        Ok(t) => t,
        Err(e) => {
            println!("lexical error: {e}");
            std::process::exit(1);
        }
    };
    println!("lexed {} tokens", tokens.len());

    let mut parser = Parser::new(lang.grammar().clone());
    match parser.parse(&tokens) {
        ParseOutcome::Unique(tree) => {
            println!(
                "valid JSON: unique parse tree with {} nodes (height {})",
                tree.size(),
                tree.height()
            );
        }
        ParseOutcome::Ambig(_) => {
            // Unreachable for this grammar; the oracle-backed test suite
            // confirms the JSON grammar is unambiguous.
            println!("valid JSON, but the grammar judged it ambiguous!?");
        }
        ParseOutcome::Reject(reason) => {
            report_rejection(&source, &tokens, &reason);
            std::process::exit(1);
        }
        ParseOutcome::Error(e) => {
            unreachable!("the JSON grammar is non-left-recursive, so errors are impossible: {e}")
        }
        ParseOutcome::Aborted(r) => unreachable!(
            "this example runs with an unlimited budget, so aborts are impossible: {r}"
        ),
    }
    Ok(())
}

/// Renders a rejection as a line/column diagnostic.
fn report_rejection(source: &str, tokens: &[costar_grammar::Token], reason: &RejectReason) {
    let offset = reason
        .position()
        .and_then(|i| tokens.get(i))
        .map(costar_grammar::Token::offset);
    match offset {
        Some(off) => {
            let prefix = &source[..off.min(source.len())];
            let line = prefix.matches('\n').count() + 1;
            let col = off - prefix.rfind('\n').map_or(0, |p| p + 1) + 1;
            println!("syntax error at line {line}, column {col}: {reason}");
        }
        None => println!("syntax error: {reason}"),
    }
}
