//! Quickstart: build a grammar, parse a word, inspect the tree.
//!
//! Uses the running example of the paper (Fig. 2): the grammar
//! `S → A c | A d ; A → a A | b` and the input word `abd`. Deciding
//! between the two `S` alternatives requires scanning to the *last*
//! token, so the grammar is not LL(k) for any fixed k — yet ALL(*)
//! prediction handles it with no grammar annotations.
//!
//! Run with: `cargo run --example quickstart`

use costar::{ParseOutcome, Parser};
use costar_grammar::{GrammarBuilder, Token};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the grammar. Names that appear as left-hand sides are
    //    nonterminals; everything else is a terminal.
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["A", "c"]);
    gb.rule("S", &["A", "d"]);
    gb.rule("A", &["a", "A"]);
    gb.rule("A", &["b"]);
    let grammar = gb.start("S").build()?;

    // 2. Build a reusable parser. It checks the paper's precondition for
    //    us: no left recursion means every theorem applies.
    let mut parser = Parser::new(grammar);
    assert!(parser.grammar_is_safe(), "grammar is non-left-recursive");

    // 3. Parse the word "abd" (CoStar consumes pre-tokenized input).
    let symbols = parser.grammar().symbols().clone();
    let tok = |name: &str| Token::new(symbols.lookup_terminal(name).expect("known terminal"), name);
    let word = vec![tok("a"), tok("b"), tok("d")];

    match parser.parse(&word) {
        ParseOutcome::Unique(tree) => {
            println!("unique parse tree for \"abd\":");
            print!("{}", tree.render(&symbols));
        }
        other => panic!("unexpected outcome: {other:?}"),
    }

    // 4. Invalid words are rejected with a diagnosis, never an error.
    let bad = vec![tok("a"), tok("c")];
    match parser.parse(&bad) {
        ParseOutcome::Reject(reason) => println!("\n\"ac\" rejected: {reason}"),
        other => panic!("unexpected outcome: {other:?}"),
    }
    Ok(())
}
