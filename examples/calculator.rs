//! A calculator: EBNF front-end + semantic actions over parse trees.
//!
//! Demonstrates two extensions beyond the published CoStar:
//!
//! * the grammar is written in EBNF and desugared to BNF by
//!   `costar-ebnf` (the paper's §6.1 conversion-tool pipeline);
//! * the resulting parse tree is evaluated with a user-defined
//!   [`Semantics`] — the paper's §8 "semantic actions" future work.
//!
//! Run with: `cargo run --example calculator "1 + 2 * (3 - 4)"`

use costar::semantics::{evaluate_outcome, SemanticOutcome, Semantics};
use costar::Parser;
use costar_grammar::{NonTerminal, SymbolTable, Token};
use costar_lexer::{Lexer, LexerSpec};

/// Arithmetic with the usual precedence, written as EBNF. The repetition
/// operators keep the grammar free of left recursion, which CoStar
/// requires (paper §4.1).
const GRAMMAR: &str = r"
expr   : term (('+' | '-') term)* ;
term   : factor (('*' | '/') factor)* ;
factor : NUM | '-' factor | '(' expr ')' ;
";

/// Evaluates parse trees to 64-bit floats by folding bottom-up over the
/// (nonterminal, children-values) structure.
struct Eval<'a> {
    symbols: &'a SymbolTable,
}

/// A semantic value. EBNF desugaring introduces helper nonterminals for
/// the `(op term)*` loops; their nodes return flattened [`Val::Seq`]
/// fragments that the enclosing `expr`/`term` node splices and folds.
#[derive(Debug, Clone)]
enum Val {
    Num(f64),
    Op(char),
    Seq(Vec<Val>),
    None,
}

/// Splices nested `Seq` fragments and drops punctuation.
fn flatten(children: Vec<Val>, out: &mut Vec<Val>) {
    for c in children {
        match c {
            Val::Seq(inner) => out.extend(inner),
            Val::None => {}
            v => out.push(v),
        }
    }
}

/// Left-associative fold of `value (op value)*`.
fn eval_chain(flat: &[Val]) -> Val {
    let mut iter = flat.iter();
    let Some(Val::Num(mut acc)) = iter.next().cloned() else {
        return Val::None;
    };
    while let (Some(Val::Op(op)), Some(Val::Num(v))) = (iter.next(), iter.next()) {
        match op {
            '+' => acc += v,
            '-' => acc -= v,
            '*' => acc *= v,
            '/' => acc /= v,
            _ => unreachable!("grammar admits only arithmetic operators"),
        }
    }
    Val::Num(acc)
}

impl Semantics for Eval<'_> {
    type Value = Val;

    fn leaf(&mut self, token: &Token) -> Val {
        match self.symbols.terminal_name(token.terminal()) {
            "NUM" => Val::Num(token.lexeme().parse().expect("lexer validated the number")),
            "(" | ")" => Val::None,
            op => Val::Op(op.chars().next().expect("single-char operator")),
        }
    }

    fn node(&mut self, nt: NonTerminal, children: Vec<Val>) -> Val {
        let mut flat = Vec::with_capacity(children.len());
        flatten(children, &mut flat);
        match self.symbols.nonterminal_name(nt) {
            "expr" | "term" => eval_chain(&flat),
            "factor" => match flat.as_slice() {
                [Val::Op('-'), Val::Num(v)] => Val::Num(-v), // unary minus
                [v @ Val::Num(_)] => v.clone(),              // NUM or ( expr )
                other => unreachable!("factor shape: {other:?}"),
            },
            // Desugaring helpers (`expr__group`, `term__star`, …): pass
            // the fragment up for the real rule to fold.
            _ => Val::Seq(flat),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "1 + 2 * (3 - 4) / 2 - -5".to_owned());

    // Compile grammar and lexer against a shared symbol table.
    let (grammar, _) = costar_ebnf::compile(GRAMMAR)?;
    let mut symbols = grammar.symbols().clone();
    let mut spec = LexerSpec::new();
    spec.token("NUM", r"[0-9]+(\.[0-9]+)?")
        .token_literal("+", "+")
        .token_literal("-", "-")
        .token_literal("*", "*")
        .token_literal("/", "/")
        .token_literal("(", "(")
        .token_literal(")", ")")
        .skip("ws", " +");
    let lexer = Lexer::compile(&spec, &mut symbols)?;

    let tokens = lexer.tokenize(&input)?;
    let mut parser = Parser::new(grammar);
    let symbols = parser.grammar().symbols().clone();
    let outcome = evaluate_outcome(parser.parse(&tokens), &mut Eval { symbols: &symbols });
    match outcome {
        SemanticOutcome::Unique(Val::Num(v)) => println!("{input} = {v}"),
        SemanticOutcome::NoParse(o) => {
            println!("not an arithmetic expression: {o:?}");
            std::process::exit(1);
        }
        other => println!("unexpected evaluation: {other:?}"),
    }
    Ok(())
}
