//! Ambiguity detection: the paper's Fig. 6 scenario and a classic
//! expression ambiguity.
//!
//! CoStar's contract for ambiguous input (paper Theorems 5.6/5.12): it
//! returns *one* correct tree and labels it `Ambig` — exactly what a
//! grammar developer debugging an unfinished grammar needs (§3.5: "for
//! computer languages, ambiguity is almost always an error"). This
//! example also cross-checks the labels against the independent
//! derivation-counting oracle from `costar-baselines`.
//!
//! Run with: `cargo run --example ambiguity`

use costar::{ParseOutcome, Parser};
use costar_baselines::{count_trees, TreeCount};
use costar_grammar::{GrammarBuilder, Token};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper Fig. 6: S -> X | Y ; X -> a ; Y -> a. The word "a" has two
    // distinct parse trees.
    let mut gb = GrammarBuilder::new();
    gb.rule("S", &["X"]);
    gb.rule("S", &["Y"]);
    gb.rule("X", &["a"]);
    gb.rule("Y", &["a"]);
    let grammar = gb.start("S").build()?;

    let mut parser = Parser::new(grammar);
    let a = parser
        .grammar()
        .symbols()
        .lookup_terminal("a")
        .expect("terminal a");
    let word = vec![Token::new(a, "a")];

    match parser.parse(&word) {
        ParseOutcome::Ambig(tree) => {
            println!("Fig. 6 grammar: input \"a\" is AMBIGUOUS; one of its trees:");
            print!("{}", tree.render(parser.grammar().symbols()));
        }
        other => panic!("expected Ambig, got {other:?}"),
    }
    // The oracle agrees there are multiple trees.
    assert_eq!(count_trees(parser.grammar(), &word), TreeCount::Many);

    // A classic grammar-design bug: flat self-concatenation. "a a a" can
    // associate two ways.
    let mut gb = GrammarBuilder::new();
    gb.rule("E", &["E'", "E"]);
    gb.rule("E", &["E'"]);
    gb.rule("E'", &["a"]);
    gb.rule("E'", &["LParen", "E", "RParen"]);
    let grammar = gb.start("E").build()?;
    let mut parser = Parser::new(grammar);
    let symbols = parser.grammar().symbols().clone();
    let tok = |n: &str| Token::new(symbols.lookup_terminal(n).unwrap(), n);

    // Unambiguous input: concatenation of two atoms.
    let two = vec![tok("a"), tok("a")];
    println!(
        "\nconcat grammar: \"a a\"   -> {}",
        label(&parser.parse(&two))
    );
    assert_eq!(count_trees(parser.grammar(), &two), TreeCount::One);

    // Parenthesized input is also unique.
    let paren = vec![tok("LParen"), tok("a"), tok("RParen"), tok("a")];
    println!(
        "concat grammar: \"(a) a\" -> {}",
        label(&parser.parse(&paren))
    );

    println!("\nBoth verdicts match the derivation-counting oracle.");
    Ok(())
}

fn label(outcome: &ParseOutcome) -> &'static str {
    match outcome {
        ParseOutcome::Unique(_) => "Unique",
        ParseOutcome::Ambig(_) => "Ambig",
        ParseOutcome::Reject(_) => "Reject",
        ParseOutcome::Error(_) => "Error",
        ParseOutcome::Aborted(_) => "Aborted",
    }
}
