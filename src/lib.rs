//! # costar-suite — umbrella crate for the CoStar reproduction
//!
//! Re-exports the workspace crates under one roof so the examples in
//! `examples/` and the cross-crate integration tests in `tests/` have a
//! single dependency. Library users should depend on the individual
//! crates (`costar`, `costar-grammar`, …) directly.

#![warn(missing_docs)]

pub use costar;
pub use costar_baselines as baselines;
pub use costar_ebnf as ebnf;
pub use costar_grammar as grammar;
pub use costar_langs as langs;
pub use costar_lexer as lexer;
pub use costar_stats as stats;
